"""Runtime observability: per-computation profiling counters, the span
tracer, the metrics registry, and the model-vs-measured calibration.

The load-bearing guarantees: ``profile=True`` iteration counts equal
the polyhedral domain cardinalities exactly (sequential, vectorized,
and multicore); ``profile=False`` emits byte-identical source to an
unprofiled build; one run with tracing enabled yields compile-stage,
loop-nest, parallel, and worker spans on a single timeline.
"""

import json
import math

import numpy as np
import pytest

from repro.driver.trace import CompileReport, StageTiming
from repro.isl.enumerate_ import count as domain_count
from repro.kernels.linalg import TEST_SGEMM, build_sgemm
from repro.obs import (CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER,
                       Counter, Gauge, Histogram, MetricsRegistry,
                       RunCollector, Span, Tracer, build_run_report,
                       get_tracer, metrics, trace_file_path,
                       write_trace_file)


@pytest.fixture
def clean_tracer():
    """The global tracer, cleared and force-disabled around the test."""
    tracer = get_tracer()
    tracer.clear()
    tracer.set_enabled(None)
    yield tracer
    tracer.clear()
    tracer.set_enabled(None)


def run_bundle(bundle, kernel, seed=0):
    rng = np.random.default_rng(seed)
    inputs = bundle.make_inputs(TEST_SGEMM, rng)
    return kernel(**{k: np.copy(v) for k, v in inputs.items()},
                  **TEST_SGEMM)


def sgemm_domain_counts(bundle):
    return {name: domain_count(comp.domain, TEST_SGEMM)
            for name, comp in bundle.computations.items()}


# -- profiled execution ------------------------------------------------------


class TestProfiledCounters:
    def test_sequential_counts_match_domain_cardinality(self):
        bundle = build_sgemm()
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=1)
        out = run_bundle(bundle, kernel)
        run = kernel.last_run
        assert run is not None
        expected = sgemm_domain_counts(bundle)
        for name, points in expected.items():
            rec = run.comp(name)
            assert rec.iterations == points, name
            # float32 stores: 4 bytes per statement instance
            assert rec.bytes_written == points * 4, name
            assert rec.wall_ns > 0, name
        assert run.total_iterations == sum(expected.values())
        # the run still computes the right answer
        ref = bundle.reference(
            {k: np.copy(v) for k, v in
             bundle.make_inputs(TEST_SGEMM,
                                np.random.default_rng(0)).items()},
            TEST_SGEMM)
        assert np.allclose(out["C"], ref["C"], atol=1e-3)

    def test_vectorized_lanes_counted_exactly(self):
        bundle = build_sgemm()
        acc = bundle.computations["acc"]
        acc.interchange("j", "k")
        acc.vectorize("j", 8)
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=1)
        assert ".size" in kernel.source   # lane counting, not per-lane
        run_bundle(bundle, kernel)
        expected = sgemm_domain_counts(bundle)
        for name, points in expected.items():
            assert kernel.last_run.comp(name).iterations == points, name

    def test_parallel_counts_merge_exactly(self):
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("i")
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=2)
        assert kernel.runtime is not None
        run_bundle(bundle, kernel)
        run = kernel.last_run
        expected = sgemm_domain_counts(bundle)
        for name, points in expected.items():
            assert run.comp(name).iterations == points, name
        assert run.parallel["regions"] >= 1
        assert run.parallel["chunks"] >= 2
        assert run.parallel["workers"] == 2

    def test_parallel_run_records_worker_spans(self):
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("i")
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=2)
        run_bundle(bundle, kernel)
        worker = [s for s in kernel.last_run.spans if s.cat == CAT_WORKER]
        assert len(worker) >= 2
        pids = {s.args["worker_pid"] for s in worker}
        assert pids  # chunk spans carry the executing worker's pid
        # the offloaded nest also appears as a parent parallel span
        cats = {s.cat for s in kernel.last_run.spans}
        assert CAT_PARALLEL in cats

    def test_mixed_schedule_yields_loop_and_parallel_spans(self):
        # Parallelize only acc: scale's nest stays sequential, so one
        # profiled run produces both span flavors.
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("i")
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=2)
        run_bundle(bundle, kernel)
        cats = {s.cat for s in kernel.last_run.spans}
        assert CAT_LOOP in cats and CAT_PARALLEL in cats

    def test_run_report_table_and_dict(self):
        bundle = build_sgemm()
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=1)
        run_bundle(bundle, kernel)
        run = kernel.last_run
        table = run.format_table()
        assert "acc" in table and "scale" in table
        assert f"{run.comp('acc').iterations}" in table
        payload = json.loads(json.dumps(run.to_dict()))
        assert payload["computations"]["acc"]["iterations"] == \
            run.comp("acc").iterations
        assert payload["function"] == bundle.function.name


class TestProfileOffIsFree:
    def test_default_source_has_no_instrumentation(self):
        bundle = build_sgemm()
        kernel = bundle.function.compile("cpu")
        assert "_obs" not in kernel.source
        assert "_now_ns" not in kernel.source
        assert kernel.last_run is None
        run_bundle(bundle, kernel)
        assert kernel.last_run is None   # still: profiling never ran

    def test_profile_false_is_byte_identical_and_cached(self):
        bundle = build_sgemm()
        k1 = bundle.function.compile("cpu")
        k2 = bundle.function.compile("cpu", profile=False)
        assert k2 is k1                  # same fingerprint -> cache hit
        assert k2.source == k1.source

    def test_profile_changes_fingerprint_not_results(self):
        plain = build_sgemm()
        prof = build_sgemm()
        k_plain = plain.function.compile("cpu")
        k_prof = prof.function.compile("cpu", profile=True,
                                       num_threads=1)
        assert k_plain.report.fingerprint != k_prof.report.fingerprint
        assert k_plain.source != k_prof.source
        out_plain = run_bundle(plain, k_plain)
        out_prof = run_bundle(prof, k_prof)
        assert np.allclose(out_plain["C"], out_prof["C"])

    def test_profile_option_validated(self):
        bundle = build_sgemm()
        with pytest.raises(TypeError, match="profile"):
            bundle.function.compile("cpu", profile=1)


# -- RunCollector / build_run_report ----------------------------------------


class TestRunCollector:
    def test_count_accumulates(self):
        c = RunCollector()
        c.count("a", 10, 40)
        c.count("a", 5, 20)
        assert c.counts["a"] == [15, 60]

    def test_merge_snapshot_roundtrip(self):
        parent, worker = RunCollector(), RunCollector()
        worker.count("a", 7, 28)
        worker.count("b", 3, 24)
        parent.count("a", 1, 4)
        parent.merge(worker.snapshot())
        parent.merge(None)              # missing snapshot is a no-op
        assert parent.counts == {"a": [8, 32], "b": [3, 24]}

    def test_report_attributes_nest_time_to_comps(self):
        c = RunCollector()
        c.count("a", 10, 40)
        c.span("i", ("a",), 1000, 4000)
        report = build_run_report("f", "cpu", 5000, c,
                                  comp_names=["a", "empty"])
        assert report.comp("a").wall_ns == 3000
        assert report.comp("empty").iterations == 0   # still present
        assert report.wall_seconds == pytest.approx(5e-6)


# -- metrics registry --------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary_and_spread(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(7.0 / 3)
        assert h.spread == pytest.approx(4.0)
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert Histogram("empty").spread == 1.0
        assert Histogram("empty").summary()["min"] == 0.0

    def test_spread_with_nonpositive_min_reports_inf(self):
        # A zero (or negative) floor under a larger max is maximal
        # imbalance; the old code answered 1.0 ("perfectly balanced").
        h = Histogram("h")
        h.observe(0.0)
        h.observe(5.0)
        assert math.isinf(h.spread)
        neg = Histogram("neg")
        neg.observe(-1.0)
        neg.observe(3.0)
        assert math.isinf(neg.spread)
        # Identical non-positive observations really are balanced.
        flat = Histogram("flat")
        flat.observe(0.0)
        flat.observe(0.0)
        assert flat.spread == 1.0

    def test_histogram_quantiles(self):
        h = Histogram("q")
        for v in range(1, 101):          # 1..100
            h.observe(float(v))
        s = h.summary()
        assert 40.0 <= s["p50"] <= 60.0
        assert 80.0 <= s["p90"] <= 100.0
        assert 90.0 <= s["p99"] <= 100.0
        assert s["p50"] <= s["p90"] <= s["p99"]
        # Quantiles never escape the observed range.
        assert s["p99"] <= s["max"] and s["p50"] >= s["min"]
        empty = Histogram("none").summary()
        assert empty["p50"] == empty["p99"] == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_registry_create_on_first_use_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        assert reg.counter("x").value == 2.0   # same instance
        reg.gauge("y").set(7)
        reg.histogram("z").observe(1.5)
        snap = reg.snapshot()
        assert snap["x"] == 2.0 and snap["y"] == 7.0
        assert snap["z"]["count"] == 1
        reg.counter("x").inc()
        assert snap["x"] == 2.0                # point-in-time copy
        reg.reset()
        after = reg.snapshot()
        assert after["x"] == 0.0 and after["y"] == 0.0
        assert after["z"]["count"] == 0

    def test_reset_keeps_outstanding_handles_live(self):
        # The stale-handle bug: reset() used to drop the instances, so
        # a caller still holding a Counter kept incrementing an orphan
        # and its counts vanished from every later snapshot.
        reg = MetricsRegistry()
        c = reg.counter("held")
        g = reg.gauge("dial")
        h = reg.histogram("timings")
        c.inc(3)
        h.observe(2.0)
        reg.reset()
        c.inc(5)                       # the handle must still count
        g.set(7)
        h.observe(4.0)
        snap = reg.snapshot()
        assert snap["held"] == 5.0
        assert snap["dial"] == 7.0
        assert snap["timings"]["count"] == 1
        assert snap["timings"]["max"] == 4.0
        assert reg.counter("held") is c   # same instance, still shared

    def test_cross_kind_name_collision_raises(self):
        from repro.obs.metrics import MetricNameError
        reg = MetricsRegistry()
        reg.counter("shared.name")
        with pytest.raises(MetricNameError):
            reg.gauge("shared.name")
        with pytest.raises(MetricNameError):
            reg.histogram("shared.name")
        reg.histogram("other")
        with pytest.raises(MetricNameError):
            reg.counter("other")
        # Same kind is still create-once-return-always.
        assert reg.counter("shared.name").name == "shared.name"

    def test_typed_snapshot_separates_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        typed = reg.typed_snapshot()
        assert typed["counters"] == {"c": 2.0}
        assert typed["gauges"] == {"g": 1.5}
        assert typed["histograms"]["h"]["count"] == 1

    def test_parallel_run_feeds_global_registry(self):
        metrics.reset()
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("i")
        kernel = bundle.function.compile("cpu", num_threads=2)
        run_bundle(bundle, kernel)
        snap = metrics.snapshot()
        assert snap["parallel.regions"] >= 1
        assert snap["parallel.chunks"] >= 2
        assert snap["parallel.chunk_seconds"]["count"] == \
            snap["parallel.chunks"]
        assert snap["parallel.chunk_iters"]["total"] >= \
            TEST_SGEMM["N"]             # every acc row dispatched
        assert snap["parallel.last_imbalance"] >= 1.0
        assert not math.isinf(snap["parallel.last_imbalance"])


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_disabled_by_default(self, clean_tracer, monkeypatch):
        monkeypatch.delenv("TIRAMISU_TRACE_FILE", raising=False)
        assert not clean_tracer.enabled()
        with clean_tracer.span("nothing"):
            pass
        assert len(clean_tracer) == 0     # disabled span() records nothing

    def test_env_file_enables_collection(self, clean_tracer, monkeypatch,
                                         tmp_path):
        dest = tmp_path / "out.json"
        monkeypatch.setenv("TIRAMISU_TRACE_FILE", str(dest))
        assert trace_file_path() == str(dest)
        assert clean_tracer.enabled()
        clean_tracer.set_enabled(False)   # forced off beats the env var
        assert not clean_tracer.enabled()

    def test_span_context_manager_records(self, clean_tracer):
        clean_tracer.set_enabled(True)
        with clean_tracer.span("work", cat="test", detail=3):
            pass
        (span,) = clean_tracer.spans()
        assert span.name == "work" and span.args == {"detail": 3}
        assert span.dur_ns >= 0

    def test_record_compile_makes_stage_spans(self, clean_tracer):
        report = CompileReport(function="f", target="cpu",
                               fingerprint="deadbeef" * 4, cache_hit=False)
        report.stages = [StageTiming("emit", 0.25, start=2.0),
                         StageTiming("bind", 0.5, start=2.25)]
        clean_tracer.record_compile(report)
        spans = clean_tracer.spans()
        assert [s.name for s in spans] == ["compile:emit", "compile:bind"]
        assert all(s.cat == CAT_COMPILE for s in spans)
        assert spans[0].start_ns == int(2.0 * 1e9)
        assert spans[0].dur_ns == int(0.25 * 1e9)
        assert spans[0].args["cache"] == "miss"

    def test_chrome_trace_events_are_well_formed(self, clean_tracer):
        clean_tracer.add(Span("s", "cat", start_ns=2000, dur_ns=1000,
                              pid=1, tid="t"))
        doc = clean_tracer.to_chrome_trace()
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["ts"] == 2.0 and ev["dur"] == 1.0   # microseconds
        assert doc["displayTimeUnit"] == "ms"

    def test_write_trace_file(self, clean_tracer, monkeypatch, tmp_path):
        monkeypatch.delenv("TIRAMISU_TRACE_FILE", raising=False)
        assert write_trace_file() is None             # no destination
        dest = tmp_path / "trace.json"
        assert write_trace_file(str(dest)) is None    # nothing recorded
        clean_tracer.add(Span("s", "cat", 0, 10, pid=1))
        assert write_trace_file(str(dest)) == str(dest)
        doc = json.loads(dest.read_text())
        assert doc["traceEvents"][0]["name"] == "s"

    def test_one_timeline_compile_run_workers(self, clean_tracer):
        """The acceptance scenario: one profiled num_threads=2 run with
        tracing on yields compile-stage, loop-nest, parallel, and worker
        spans in a single exported trace."""
        clean_tracer.set_enabled(True)
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("i")
        # cache=False: a registry hit would skip the emit/bind stages
        # whose spans this test asserts on
        kernel = bundle.function.compile("cpu", profile=True,
                                         num_threads=2, cache=False)
        run_bundle(bundle, kernel)
        cats = {s.cat for s in clean_tracer.spans()}
        assert {CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER} <= cats
        names = {s.name for s in clean_tracer.spans()}
        assert "compile:emit" in names

    def test_own_tracer_instances_are_independent(self):
        t1, t2 = Tracer(), Tracer()
        t1.set_enabled(True)
        t1.add_span("a", "cat", 0, 5)
        assert len(t1) == 1 and len(t2) == 0

    def test_export_during_active_emission_is_always_valid_json(
            self, tmp_path):
        """The eager-flush contract: exporting while other threads are
        still emitting spans must always leave a complete Chrome-trace
        document on disk (temp-file + atomic rename), never a torn
        one."""
        import threading
        tracer = Tracer()
        tracer.set_enabled(True)
        dest = tmp_path / "trace.json"

        def hammer():
            for i in range(2000):
                tracer.add_span(f"s{i}", "cat", i, i + 5,
                                detail="x" * 64)

        writers = [threading.Thread(target=hammer) for _ in range(3)]
        for t in writers:
            t.start()
        try:
            sizes = []
            for _ in range(20):
                assert tracer.export(str(dest)) == str(dest)
                doc = json.loads(dest.read_text())   # must never tear
                assert "traceEvents" in doc
                sizes.append(len(doc["traceEvents"]))
        finally:
            for t in writers:
                t.join()
        assert sizes == sorted(sizes)      # the log only grows
        assert tracer.export(str(dest)) == str(dest)
        assert len(json.loads(dest.read_text())["traceEvents"]) == 6000
        # No stray temp files left behind by the atomic writer.
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]

    def test_compile_spans_carry_compile_id(self, clean_tracer):
        clean_tracer.set_enabled(True)
        report = CompileReport(function="f", target="cpu",
                               fingerprint="ab" * 32)
        report.compile_id = "deadbeef00112233"
        report.stages.append(StageTiming("emit", 0.01, 1.0))
        clean_tracer.record_compile(report)
        (span,) = clean_tracer.spans()
        assert span.args["compile_id"] == "deadbeef00112233"


# -- CompileReport satellites ------------------------------------------------


class TestCompileReportObservability:
    def test_cache_stats_is_point_in_time(self):
        # Keep report A, compile something else, A's stats must not move.
        a = build_sgemm()
        report_a = a.function.compile("cpu").report
        frozen = dict(report_a.cache_stats)
        b = build_sgemm()
        b.computations["acc"].parallelize("i")   # different fingerprint
        b.function.compile("cpu", num_threads=1)
        assert report_a.cache_stats == frozen

    def test_to_dict_json_roundtrip(self):
        bundle = build_sgemm()
        report = bundle.function.compile("cpu",
                                         check_legality=True).report
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["function"] == bundle.function.name
        assert payload["target"] == "cpu"
        assert payload["fingerprint"] == report.fingerprint
        names = [s["name"] for s in payload["stages"]]
        assert "emit" in names and "legality" in names
        assert all(s["start"] > 0 for s in payload["stages"])
        assert payload["total_seconds"] == \
            pytest.approx(report.total_seconds)
        assert payload["cache_stats"] == report.cache_stats

    def test_format_table_aligns_long_stage_names(self):
        report = CompileReport(function="f", target="cpu",
                               fingerprint="abc")
        long = "a-very-long-stage-name-indeed"
        report.stages = [StageTiming("emit", 0.001),
                         StageTiming(long, 0.002)]
        table = report.format_table()
        rows = [l for l in table.splitlines()
                if l.strip().startswith(("stage", "emit", long, "total"))]
        assert len(rows) == 4
        # the right-aligned ms column ends at the same offset everywhere
        assert len({len(r) for r in rows}) == 1, table

    def test_calibration_rows_are_exact_and_normalized(self):
        from repro.evaluation import calibrate_kernel, render_calibration
        from repro.kernels.linalg import schedule_sgemm_cpu

        rows = calibrate_kernel(build_sgemm,
                                lambda b: schedule_sgemm_cpu(b, 8, 4))
        assert {r.computation for r in rows} == {"scale", "acc"}
        for r in rows:
            assert r.iterations_exact, r
            assert 0.0 <= r.share_error <= 1.0
        assert sum(r.measured_share for r in rows) == pytest.approx(1.0)
        assert sum(r.modeled_share for r in rows) == pytest.approx(1.0)
        table = render_calibration(rows)
        assert "sgemm" in table and "yes" in table

    def test_format_table_conditional_lines(self):
        report = CompileReport(function="f", target="cpu",
                               fingerprint="abc")
        bare = report.format_table()
        assert "legality" not in bare and "race-check" not in bare
        assert "parallel:" not in bare and "cache:" not in bare
        report.deps_checked = 3
        report.races_checked = 1
        report.parallel_regions = 2
        report.parallel_workers = 4
        report.cache_stats = {"hits": 1, "misses": 2, "evictions": 0,
                              "size": 2, "maxsize": 64}
        full = report.format_table()
        assert "3 dependences" in full
        assert "1 tagged" in full
        assert "2 region(s) x 4 worker(s)" in full
        assert "1 hits / 2 misses" in full
