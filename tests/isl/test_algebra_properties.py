"""Property-based tests of the set/map algebra: the semantic laws the
compiler relies on, checked against point enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl import Map, Set, count, parse_map, parse_set, points


@st.composite
def small_sets(draw):
    lo = draw(st.integers(-3, 2))
    hi = draw(st.integers(lo, lo + 6))
    stride = draw(st.sampled_from([None, 2, 3]))
    if stride is None:
        return parse_set(f"{{ [i] : {lo} <= i <= {hi} }}")
    return parse_set(f"{{ [i] : {lo} <= i <= {hi} and "
                     f"exists e : i = {stride}e }}")


@st.composite
def affine_maps(draw):
    a = draw(st.integers(-2, 2).filter(lambda v: v != 0))
    b = draw(st.integers(-4, 4))
    return parse_map(f"{{ [i] -> [{a}i + {b}] }}"), (a, b)


class TestSetLaws:
    @given(small_sets(), small_sets())
    @settings(max_examples=60, deadline=None)
    def test_union_commutes(self, s, t):
        assert sorted(points(s | t)) == sorted(points(t | s))

    @given(small_sets(), small_sets())
    @settings(max_examples=60, deadline=None)
    def test_intersect_is_pointwise(self, s, t):
        expected = sorted(set(points(s)) & set(points(t)))
        assert sorted(points(s & t)) == expected

    @given(small_sets(), small_sets())
    @settings(max_examples=40, deadline=None)
    def test_subtract_is_pointwise(self, s, t):
        if any(p.n_div for p in t.pieces):
            return  # subtract requires div-free subtrahend
        expected = sorted(set(points(s)) - set(points(t)))
        assert sorted(points(s - t)) == expected

    @given(small_sets(), small_sets())
    @settings(max_examples=40, deadline=None)
    def test_subset_iff_points_subset(self, s, t):
        if any(p.n_div for p in t.pieces):
            return
        expected = set(points(s)) <= set(points(t))
        assert s.is_subset(t) == expected

    @given(small_sets())
    @settings(max_examples=40, deadline=None)
    def test_emptiness_matches_enumeration(self, s):
        assert s.is_empty() == (count(s) == 0)


class TestMapLaws:
    @given(affine_maps(), small_sets())
    @settings(max_examples=60, deadline=None)
    def test_apply_is_pointwise_image(self, m_ab, s):
        m, (a, b) = m_ab
        image = sorted({(a * p[0] + b,) for p in points(s)})
        got = sorted(points(m.apply(s)))
        assert got == image

    @given(affine_maps(), affine_maps(), small_sets())
    @settings(max_examples=40, deadline=None)
    def test_composition_associates_with_apply(self, m1_ab, m2_ab, s):
        m1, __ = m1_ab
        m2, ___ = m2_ab
        via_compose = sorted(points(m1.apply_range(m2).apply(s)))
        via_seq = sorted(points(m2.apply(m1.apply(s))))
        assert via_compose == via_seq

    @given(affine_maps(), small_sets())
    @settings(max_examples=40, deadline=None)
    def test_reverse_roundtrip_superset(self, m_ab, s):
        """S ⊆ m⁻¹(m(S)) for any map."""
        m, __ = m_ab
        roundtrip = m.reverse().apply(m.apply(s))
        assert set(points(s)) <= set(points(roundtrip))

    @given(affine_maps())
    @settings(max_examples=30, deadline=None)
    def test_domain_range_of_restricted_map(self, m_ab):
        m, (a, b) = m_ab
        box = parse_set("{ [i] : 0 <= i <= 5 }")
        restricted = m.intersect_domain(box)
        assert sorted(points(restricted.domain())) == \
            [(i,) for i in range(6)]
        assert sorted(points(restricted.range())) == \
            sorted({(a * i + b,) for i in range(6)})


class TestUnimodularBijectivity:
    """Schedule transformations are bijections; verify the map forms the
    compiler uses (split/skew/shift patterns) against enumeration."""

    @given(st.integers(2, 5), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_split_map_bijective(self, factor, n):
        m = parse_map(f"{{ [i] -> [o, p] : o = floor(i/{factor}) and "
                      f"p = i - {factor}o }}")
        src = parse_set(f"{{ [i] : 0 <= i <= {n} }}")
        img = m.apply(src)
        assert count(img) == n + 1

    @given(st.integers(-3, 3), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_skew_map_bijective(self, f, n):
        m = parse_map(f"{{ [i,j] -> [i, j + {f}i] }}")
        src = parse_set(f"{{ [i,j] : 0 <= i < {n} and 0 <= j < {n} }}")
        assert count(m.apply(src)) == n * n
