"""Unit tests for Space: naming contexts of sets and maps."""

import pytest

from repro.isl import Space
from repro.isl.linexpr import IN, OUT, PARAM


class TestConstruction:
    def test_set_space(self):
        s = Space.set_space(("i", "j"), "S", ("N",))
        assert not s.is_map
        assert s.out_name == "S"
        assert s.n(OUT) == 2 and s.n(PARAM) == 1

    def test_map_space(self):
        m = Space.map_space(("i",), ("x", "y"), "A", "B")
        assert m.is_map
        assert m.n(IN) == 1 and m.n(OUT) == 2

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            Space.set_space(("i", "i"))

    def test_unnamed_in_tuple_gets_empty_name(self):
        m = Space.map_space(("i",), ("j",))
        assert m.in_name == ""


class TestQueries:
    def test_dim_name(self):
        m = Space.map_space(("a",), ("b",), params=("P",))
        assert m.dim_name(IN, 0) == "a"
        assert m.dim_name(OUT, 0) == "b"
        assert m.dim_name(PARAM, 0) == "P"

    def test_find_shadowing(self):
        """Set/out dims shadow in dims, which shadow params."""
        m = Space.map_space(("x",), ("x",), params=("x",))
        assert m.find("x") == (OUT, 0)
        s = Space.set_space(("i",), params=("i",))
        assert s.find("i") == (OUT, 0)

    def test_find_missing(self):
        assert Space.set_space(("i",)).find("zzz") is None


class TestDerived:
    def test_domain_range(self):
        m = Space.map_space(("i", "j"), ("k",), "D", "R", ("N",))
        d = m.domain()
        r = m.range()
        assert not d.is_map and d.out_dims == ("i", "j")
        assert d.out_name == "D"
        assert r.out_dims == ("k",) and r.out_name == "R"

    def test_reverse(self):
        m = Space.map_space(("i",), ("j", "k"), "A", "B")
        r = m.reverse()
        assert r.in_dims == ("j", "k") and r.out_dims == ("i",)
        assert r.in_name == "B" and r.out_name == "A"

    def test_domain_of_set_rejected(self):
        with pytest.raises(ValueError):
            Space.set_space(("i",)).domain()

    def test_aligned_params_union(self):
        a = Space.set_space(("i",), params=("N", "M"))
        b = Space.set_space(("i",), params=("M", "K"))
        assert a.aligned_params(b) == ("N", "M", "K")

    def test_compatible_ignores_params(self):
        a = Space.set_space(("i", "j"), "S", ("N",))
        b = Space.set_space(("x", "y"), "S", ("K", "L"))
        assert a.compatible_with(b)

    def test_incompatible_names(self):
        a = Space.set_space(("i",), "S")
        b = Space.set_space(("i",), "T")
        assert not a.compatible_with(b)

    def test_incompatible_arity(self):
        a = Space.set_space(("i",))
        b = Space.set_space(("i", "j"))
        assert not a.compatible_with(b)
