"""End-to-end property test: random compositions of scheduling commands
must preserve program semantics (the compiler's core guarantee)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Buffer, Computation, Function, Input, Var

COMMANDS = ["tile", "split_i", "split_j", "interchange", "shift", "skew",
            "parallel", "vector", "unroll"]


def build_stencil(n, m):
    """out(i,j) = in(i,j) + in(i+1,j) + in(i,j+1): a forward stencil with
    no loop-carried dependences, so every composition is legal."""
    f = Function("f")
    with f:
        inp = Input("inp", [Var("x", 0, n + 1), Var("y", 0, m + 1)])
        i, j = Var("i", 0, n), Var("j", 0, m)
        c = Computation("c", [i, j], None)
        c.set_expression(inp(i, j) + inp(i + 1, j) + inp(i, j + 1))
    return f, c


def reference(data, n, m):
    return data[:n, :m] + data[1:n+1, :m] + data[:n, 1:m+1]


@given(st.lists(st.sampled_from(COMMANDS), min_size=0, max_size=5),
       st.integers(5, 12), st.integers(5, 12),
       st.integers(2, 4), st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_random_schedule_composition(ops, n, m, t1, t2):
    f, c = build_stencil(n, m)
    fresh = iter(range(100))
    for op in ops:
        names = c.time_names
        k = next(fresh)
        try:
            if op == "tile" and len(names) >= 2:
                c.tile(names[0], names[1], t1, t2,
                       f"a{k}", f"b{k}", f"c{k}", f"d{k}")
            elif op == "split_i":
                c.split(names[0], t1, f"e{k}", f"f{k}")
            elif op == "split_j":
                c.split(names[-1], t2, f"g{k}", f"h{k}")
            elif op == "interchange" and len(names) >= 2:
                c.interchange(names[0], names[-1])
            elif op == "shift":
                c.shift(names[0], 3)
            elif op == "skew" and len(names) >= 2:
                c.skew(names[0], names[1], 2)
            elif op == "parallel":
                c.parallelize(names[0])
            elif op == "vector":
                c.vectorize(names[-1], 4)
            elif op == "unroll":
                c.unroll(names[-1], 2)
        except Exception:
            raise
    kernel = f.compile("cpu")
    rng = np.random.default_rng(0)
    data = rng.random((n + 1, m + 1)).astype(np.float32)
    out = kernel(inp=data)["c"]
    assert np.allclose(out, reference(data, n, m), atol=1e-5)


@given(st.integers(4, 10), st.integers(2, 4), st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_tile_then_separate_random(n, t1, t2):
    f = Function("f")
    with f:
        c = Computation("c", [Var("i", 0, n), Var("j", 0, n)], None)
        c.set_expression(c(Var("i", 0, n), Var("j", 0, n)) + 1.0)
    c.tile("i", "j", t1, t2)
    c.separate_all("i1", "j1")
    out = f.compile("cpu")()["c"]
    assert (out == 1).all()


@given(st.integers(2, 5), st.integers(6, 20))
@settings(max_examples=25, deadline=None)
def test_compute_at_window_random(radius, n):
    """compute_at with a random stencil radius: the overlapped-tiling
    windows must always yield the exact result."""
    f = Function("f")
    with f:
        size = n + radius
        inp = Input("inp", [Var("x", 0, size)])
        iw = Var("iw", 0, size)
        i = Var("i", 0, n)
        a = Computation("a", [iw], None)
        a.set_expression(inp(iw) * 2.0)
        b = Computation("b", [i], None)
        expr = None
        for d in range(radius + 1):
            term = a(i + d)
            expr = term if expr is None else expr + term
        b.set_expression(expr)
    b.split("i", 4, "i0", "i1")
    a.compute_at(b, "i0")
    kernel = f.compile("cpu")
    data = np.arange(n + radius, dtype=np.float32)
    out = kernel(inp=data)["b"]
    ref = sum(2.0 * data[d:d + n] for d in range(radius + 1))
    assert np.allclose(out, ref)
