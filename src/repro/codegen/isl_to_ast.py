"""Loop synthesis: from scheduled instance sets to an AST.

This is the reproduction of the paper's code generation step (Section
V-A): "generating nested loops that visit each computation in the set,
once and only once, while following the lexicographical ordering between
the computations".  The algorithm is a simplified
Quilleré-Rajopadhye-Wilde scheme: statements are grouped by their static
(β) ordering dimensions; shared dynamic dimensions become loops whose
bounds are the union of the statements' bounds (computed by
Fourier-Motzkin projection), with per-statement guards restoring
exactness when the statements' domains differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CodegenError
from repro.isl import BasicSet, Constraint, LinExpr
from repro.isl.fourier_motzkin import (bounds_on_dim, eliminate_dims,
                                       rational_feasible)
from repro.isl.linexpr import OUT

from .ast import Block, Bound, Loop, Stmt
from .domains import prepare_pieces


@dataclass
class _Item:
    comp: object
    piece: BasicSet
    beta: List[int]
    # FM-projected constraint systems: systems[k] involves dims < k only.
    systems: List[List[Constraint]] = None

    @property
    def depth(self) -> int:
        return len(self.comp.time_names)

    def project(self) -> None:
        n = self.depth
        systems: List[List[Constraint]] = [None] * (n + 1)
        current = list(self.piece.constraints)
        systems[n] = current
        for k in range(n - 1, -1, -1):
            current = eliminate_dims(current, [(OUT, k)])
            systems[k] = current
        self.systems = systems


def generate_ast(fn, beta=None) -> Block:
    """Generate the loop AST for a function's current schedule."""
    return build_ast(collect_items(fn, beta))


def collect_items(fn, beta=None) -> List[_Item]:
    """The time-space stage: turn each computation's scheduled instance
    set into per-piece items with FM-projected constraint systems (the
    driver times this separately from the loop synthesis below)."""
    comps = [c for c in fn.active_computations() if _generates_code(c)]
    if not comps:
        raise CodegenError(f"function {fn.name} has nothing to compute")
    if beta is None:
        beta = fn.resolve_order()
    items: List[_Item] = []
    for c in comps:
        for piece in prepare_pieces(c.instances):
            item = _Item(c, piece, beta[c.name])
            item.project()
            items.append(item)
    return items


def build_ast(items: List[_Item]) -> Block:
    """The AST-generation stage: Quilleré-style loop synthesis over the
    prepared time-space items."""
    return _gen_block(items, 0, [])


def _generates_code(comp) -> bool:
    from repro.core.computation import Input, Operation
    if isinstance(comp, Operation):
        return True
    if isinstance(comp, Input):
        return False
    return comp.expr is not None


def _gen_block(items: List[_Item], level: int,
               context: List[Constraint]) -> Block:
    block = Block()
    groups: Dict[int, List[_Item]] = {}
    for item in items:
        groups.setdefault(item.beta[level] if level < len(item.beta) else 0,
                          []).append(item)
    for key in sorted(groups):
        group = groups[key]
        leaves = [it for it in group if it.depth <= level]
        inner = [it for it in group if it.depth > level]
        for leaf in leaves:
            block.children.append(_make_stmt(leaf, context))
        if inner:
            block.children.append(_make_loop(inner, level, context))
    return block


def _make_stmt(item: _Item, context: List[Constraint]) -> Stmt:
    guards = [c for c in item.piece.constraints
              if not _implied_by(context, c)]
    return Stmt(comp=item.comp, guards=guards, depth=item.depth)


def _implied_by(context: List[Constraint], c: Constraint) -> bool:
    from repro.isl.simplify import _implied
    return _implied(context, c)


def _make_loop(group: List[_Item], level: int,
               context: List[Constraint]) -> Loop:
    lowers_groups: List[List[Bound]] = []
    uppers_groups: List[List[Bound]] = []
    for item in group:
        lo, up = bounds_on_dim(item.systems[level + 1], (OUT, level))
        if not lo or not up:
            raise CodegenError(
                f"{item.comp.name}: loop level {level} "
                f"({item.comp.time_names[level]}) is unbounded")
        lo = _prune_bounds(_dedup(lo), context, (OUT, level), True)
        up = _prune_bounds(_dedup(up), context, (OUT, level), False)
        lowers_groups.append(lo)
        uppers_groups.append(up)
    # Deduplicate identical bound groups across statements.
    lowers_groups = _dedup_groups(lowers_groups)
    uppers_groups = _dedup_groups(uppers_groups)
    new_context = list(context)
    exact_bounds = len(lowers_groups) == 1 and len(uppers_groups) == 1
    if exact_bounds:
        for a, e in lowers_groups[0]:
            new_context.append(
                Constraint.ge(LinExpr.dim(OUT, level, a) - e))
        for b, f in uppers_groups[0]:
            new_context.append(
                Constraint.ge(f - LinExpr.dim(OUT, level, b)))
    tag = None
    for item in group:
        t = item.comp.tags.get(level)
        if t is not None:
            if tag is not None and tag != t:
                raise CodegenError(
                    f"conflicting tags {tag} vs {t} on fused loop "
                    f"level {level}")
            tag = t
    body = _gen_block(group, level + 1, new_context)
    var = group[0].comp.time_names[level]
    return Loop(level=level, var=var,
                lowers=lowers_groups, uppers=uppers_groups,
                body=body, tag=tag,
                comps=tuple(it.comp.name for it in group))


def _prune_bounds(bounds: List[Bound], context: List[Constraint],
                  dim, is_lower: bool) -> List[Bound]:
    """Drop bounds implied by the outer-loop context plus the remaining
    bounds (e.g. the redundant `i1 >= -t*i0` that tiling projection
    produces next to `i1 >= 0`)."""
    from repro.isl.simplify import _implied
    if len(bounds) <= 1:
        return bounds
    kept = list(bounds)
    for bound in list(bounds):
        if len(kept) == 1:
            break
        a, e = bound
        expr = LinExpr.dim(dim[0], dim[1], a) - e
        if not is_lower:
            expr = -expr
        others = [Constraint.ge(
            (LinExpr.dim(dim[0], dim[1], b) - f) if is_lower
            else (f - LinExpr.dim(dim[0], dim[1], b)))
            for (b, f) in kept if (b, f) != bound]
        if _implied(context + others, Constraint.ge(expr)):
            kept.remove(bound)
    return kept


def _dedup(bounds: Sequence[Bound]) -> List[Bound]:
    seen = []
    for b in bounds:
        if b not in seen:
            seen.append(b)
    return seen


def _dedup_groups(groups: List[List[Bound]]) -> List[List[Bound]]:
    out: List[List[Bound]] = []
    for g in groups:
        canon = sorted(g, key=repr)
        if not any(canon == sorted(o, key=repr) for o in out):
            out.append(g)
    return out
