"""Parser for (a practical subset of) the ISL set/map notation.

Supported syntax::

    [N, M] -> { S[i, j] -> T[i + 1, 2j] : 0 <= i < N and exists e : j = 2e }
    { S[i, j] : 0 <= i, j < N or i = j }
    { [i] -> [floor(i/4)] }
    { S[i] : i % 2 = 0 }

Features: symbolic parameters, named tuples, expression outputs (which add
equality constraints), chained comparisons, ``and`` / ``or`` (DNF-expanded
into a union of basic pieces), ``exists`` quantifiers, ``floor(e/c)``,
``e % c`` and ``e mod c`` (both introduce existential division dims), and
``true`` / ``false`` literals.  Multiple pieces may be separated by ``;``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .basic import BasicMap, BasicSet
from .constraint import Constraint
from .linexpr import DIV, IN, OUT, PARAM, Dim, LinExpr
from .space import Space
from .union import Map, Set

_TOKEN_RE = re.compile(r"""
    (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<op><=|>=|->|!=|[-+*/%(){}\[\],;:=<>])
  | (?P<ws>\s+)
""", re.VERBOSE)

_KEYWORDS = {"and", "or", "exists", "mod", "floor", "true", "false", "min",
             "max", "not"}


class ParseError(ValueError):
    pass


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, m.group()))
    tokens.append(("eof", ""))
    return tokens


# Boolean expression tree used before DNF expansion.
class _And:
    def __init__(self, parts):
        self.parts = parts


class _Or:
    def __init__(self, parts):
        self.parts = parts


class _Atom:
    def __init__(self, constraints):
        self.constraints = constraints  # a conjunction of Constraints


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.params: List[str] = []
        self.in_dims: List[str] = []
        self.out_dims: List[str] = []
        self.in_name: Optional[str] = None
        self.out_name: Optional[str] = None
        self.is_map = False
        self.n_div = 0
        self.scope: Dict[str, Dim] = {}
        self.tuple_constraints: List[Constraint] = []

    # -- token helpers --------------------------------------------------

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        kind, val = self.next()
        if val != value:
            raise ParseError(f"expected {value!r}, got {val!r}")

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.pos += 1
            return True
        return False

    # -- entry point ------------------------------------------------------

    def parse(self):
        if self.peek()[1] == "[":
            self._parse_params()
            self.expect("->")
        self.expect("{")
        pieces: List[BasicMap] = []
        first_space: Optional[Space] = None
        if self.accept("}"):
            raise ParseError("empty braces: use a 'false' condition instead")
        while True:
            for piece in self._parse_piece():
                pieces.append(piece)
                if first_space is None:
                    first_space = piece.space
            if not self.accept(";"):
                break
        self.expect("}")
        if self.peek()[0] != "eof":
            raise ParseError(f"trailing input at {self.peek()[1]!r}")
        space = first_space
        cls = Map if space.is_map else Set
        return cls(pieces, space)

    def _parse_params(self) -> None:
        self.expect("[")
        if not self.accept("]"):
            while True:
                kind, name = self.next()
                if kind != "name":
                    raise ParseError(f"bad parameter name {name!r}")
                self.params.append(name)
                if not self.accept(","):
                    break
            self.expect("]")

    # -- pieces -----------------------------------------------------------

    def _parse_piece(self) -> List[BasicMap]:
        # Reset per-piece dim state (params persist).
        self.in_dims = []
        self.out_dims = []
        self.in_name = None
        self.out_name = None
        self.is_map = False
        self.n_div = 0
        self.scope = {(p): (PARAM, i) for i, p in enumerate(self.params)}
        self.tuple_constraints = []

        name1, dims1_exprs = self._parse_tuple(declare=True)
        if self.accept("->"):
            self.is_map = True
            # First tuple was the input tuple: re-home its declarations.
            self.in_name, self.in_dims = name1, self.out_dims
            self.out_dims = []
            remap = {}
            for nm in list(self.scope):
                kind, idx = self.scope[nm]
                if kind == OUT:
                    self.scope[nm] = (IN, idx)
                    remap[(OUT, idx)] = (IN, idx)
            self.tuple_constraints = [c.remap(remap)
                                      for c in self.tuple_constraints]
            self.out_name, __ = self._parse_tuple(declare=True)
        else:
            self.out_name = name1
        tree: object = _Atom([])
        if self.accept(":"):
            tree = self._parse_bool_or()
        # Snapshot AFTER parsing the condition: floor()/mod/div inside it
        # append their defining constraints to tuple_constraints too.
        constraints = list(self.tuple_constraints)
        space = self._make_space()
        conjunctions = _dnf(tree)
        pieces = []
        for conj in conjunctions:
            if conj is None:  # 'false'
                continue
            cls = BasicMap if self.is_map else BasicSet
            pieces.append(cls(space, constraints + conj, self.n_div))
        if not pieces:
            cls = BasicMap if self.is_map else BasicSet
            pieces.append(cls(space, constraints
                              + [Constraint.ge(LinExpr.constant(-1))],
                              self.n_div))
        return pieces

    def _make_space(self) -> Space:
        if self.is_map:
            return Space.map_space(tuple(self.in_dims), tuple(self.out_dims),
                                   self.in_name, self.out_name,
                                   tuple(self.params))
        return Space.set_space(tuple(self.out_dims), self.out_name,
                               tuple(self.params))

    def _parse_tuple(self, declare: bool):
        name = None
        if self.peek()[0] == "name" and self.peek()[1] not in _KEYWORDS:
            name = self.next()[1]
        self.expect("[")
        entries = []
        if not self.accept("]"):
            while True:
                entries.append(self._parse_tuple_entry())
                if not self.accept(","):
                    break
            self.expect("]")
        return name, entries

    def _parse_tuple_entry(self):
        """A tuple entry is either a fresh dim name or an expression, in
        which case an anonymous dim plus an equality constraint is added."""
        start = self.pos
        kind, val = self.peek()
        idx = len(self.out_dims)
        if kind == "name" and val not in _KEYWORDS:
            nxt = self.tokens[self.pos + 1][1]
            if nxt in (",", "]") and val not in self.scope:
                self.next()
                self.out_dims.append(val)
                self.scope[val] = (OUT, idx)
                return val
        # Expression entry (includes re-used names, adding an equality).
        expr = self._parse_expr()
        dim_name = f"_o{idx}"
        while dim_name in self.scope:
            dim_name += "'"
        self.out_dims.append(dim_name)
        self.tuple_constraints.append(
            Constraint.eq(LinExpr.dim(OUT, idx) - expr))
        return dim_name

    # -- boolean conditions -----------------------------------------------

    def _parse_bool_or(self):
        parts = [self._parse_bool_and()]
        while self.accept("or"):
            parts.append(self._parse_bool_and())
        return parts[0] if len(parts) == 1 else _Or(parts)

    def _parse_bool_and(self):
        parts = [self._parse_bool_atom()]
        while self.accept("and"):
            parts.append(self._parse_bool_atom())
        return parts[0] if len(parts) == 1 else _And(parts)

    def _parse_bool_atom(self):
        if self.accept("("):
            tree = self._parse_bool_or()
            self.expect(")")
            return tree
        if self.accept("true"):
            return _Atom([])
        if self.accept("false"):
            return _Atom(None)
        if self.accept("exists"):
            opened = self.accept("(")
            names = []
            while True:
                kind, nm = self.next()
                if kind != "name":
                    raise ParseError(f"bad existential name {nm!r}")
                names.append(nm)
                if not self.accept(","):
                    break
            self.expect(":")
            saved = {}
            for nm in names:
                saved[nm] = self.scope.get(nm)
                self.scope[nm] = (DIV, self.n_div)
                self.n_div += 1
            body = self._parse_bool_or()
            if opened:
                self.expect(")")
            for nm in names:
                if saved[nm] is None:
                    del self.scope[nm]
                else:
                    self.scope[nm] = saved[nm]
            return body
        return self._parse_comparison_chain()

    def _parse_comparison_chain(self):
        exprs = [self._parse_expr_list()]
        ops: List[str] = []
        while self.peek()[1] in ("<", "<=", ">", ">=", "=", "!="):
            ops.append(self.next()[1])
            exprs.append(self._parse_expr_list())
        if not ops:
            raise ParseError(f"expected comparison near {self.peek()[1]!r}")
        constraints: List[Constraint] = []
        ors: List[_Or] = []
        for (lhs_list, op, rhs_list) in zip(exprs, ops, exprs[1:]):
            for lhs in lhs_list:
                for rhs in rhs_list:
                    if op == "<=":
                        constraints.append(Constraint.ge(rhs - lhs))
                    elif op == "<":
                        constraints.append(Constraint.ge(rhs - lhs - 1))
                    elif op == ">=":
                        constraints.append(Constraint.ge(lhs - rhs))
                    elif op == ">":
                        constraints.append(Constraint.ge(lhs - rhs - 1))
                    elif op == "=":
                        constraints.append(Constraint.eq(lhs - rhs))
                    elif op == "!=":
                        # (lhs < rhs) or (lhs > rhs): defer to DNF.
                        ors.append(_Or([
                            _Atom([Constraint.ge(rhs - lhs - 1)]),
                            _Atom([Constraint.ge(lhs - rhs - 1)])]))
        if ors:
            return _And([_Atom(constraints)] + ors)
        return _Atom(constraints)

    def _parse_expr_list(self) -> List[LinExpr]:
        """Comma-separated expressions, enabling ``0 <= i, j < N``."""
        exprs = [self._parse_expr()]
        while self.accept(","):
            exprs.append(self._parse_expr())
        return exprs

    # -- affine expressions -------------------------------------------------

    def _parse_expr(self, stop_div: bool = False) -> LinExpr:
        expr = self._parse_term(stop_div)
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            term = self._parse_term(stop_div)
            expr = expr + term if op == "+" else expr - term
        return expr

    def _parse_term(self, stop_div: bool = False) -> LinExpr:
        factor = self._parse_unary()
        while True:
            nxt = self.peek()[1]
            if nxt == "/" and stop_div:
                return factor
            if nxt == "*":
                self.next()
                rhs = self._parse_unary()
                factor = _affine_mul(factor, rhs)
            elif nxt in ("%", "mod"):
                self.next()
                rhs = self._parse_unary()
                if not rhs.is_constant():
                    raise ParseError("modulo by non-constant")
                factor = self._make_mod(factor, int(rhs.const))
            elif nxt == "/":
                self.next()
                rhs = self._parse_unary()
                if not rhs.is_constant():
                    raise ParseError("division by non-constant")
                factor = self._make_exact_div(factor, int(rhs.const))
            elif self.peek()[0] in ("num", "name") and \
                    self.peek()[1] not in _KEYWORDS | {"and", "or"}:
                # Implicit multiplication: "2j" / "2 j" / "N j".
                rhs = self._parse_unary()
                factor = _affine_mul(factor, rhs)
            else:
                return factor

    def _parse_unary(self) -> LinExpr:
        kind, val = self.peek()
        if val == "-":
            self.next()
            return -self._parse_unary()
        if val == "+":
            self.next()
            return self._parse_unary()
        if val == "(":
            self.next()
            expr = self._parse_expr()
            self.expect(")")
            return expr
        if val == "floor":
            self.next()
            self.expect("(")
            num = self._parse_expr(stop_div=True)
            self.expect("/")
            den = self._parse_expr()
            self.expect(")")
            if not den.is_constant():
                raise ParseError("floor() denominator must be constant")
            return self._make_floor(num, int(den.const))
        if kind == "num":
            self.next()
            return LinExpr.constant(int(val))
        if kind == "name":
            self.next()
            if val in self.scope:
                k, i = self.scope[val]
                return LinExpr.dim(k, i)
            # Unknown names become new parameters (ISL-style tolerance).
            self.params.append(val)
            dim = (PARAM, len(self.params) - 1)
            self.scope[val] = dim
            return LinExpr.dim(*dim)
        raise ParseError(f"unexpected token {val!r} in expression")

    # -- divisions ----------------------------------------------------------

    def _make_floor(self, num: LinExpr, den: int) -> LinExpr:
        if den <= 0:
            raise ParseError("floor() denominator must be positive")
        q = (DIV, self.n_div)
        self.n_div += 1
        qe = LinExpr.dim(*q)
        # den*q <= num <= den*q + den - 1
        self.tuple_constraints.append(Constraint.ge(num - qe * den))
        self.tuple_constraints.append(
            Constraint.ge(qe * den + (den - 1) - num))
        return qe

    def _make_mod(self, expr: LinExpr, mod: int) -> LinExpr:
        if mod <= 0:
            raise ParseError("modulo must be positive")
        return expr - self._make_floor(expr, mod) * mod

    def _make_exact_div(self, expr: LinExpr, den: int) -> LinExpr:
        """ISL's `/` on integers requires exact division."""
        if den == 0:
            raise ParseError("division by zero")
        q = (DIV, self.n_div)
        self.n_div += 1
        qe = LinExpr.dim(*q)
        self.tuple_constraints.append(Constraint.eq(expr - qe * den))
        return qe


def _affine_mul(a: LinExpr, b: LinExpr) -> LinExpr:
    if a.is_constant():
        return b * int(a.const)
    if b.is_constant():
        return a * int(b.const)
    raise ParseError("non-affine product of two variables")


def _dnf(tree) -> List[Optional[List[Constraint]]]:
    """Expand a boolean tree into a list of conjunctions.

    Each conjunction is a list of constraints; ``None`` marks 'false'.
    """
    if isinstance(tree, _Atom):
        return [list(tree.constraints) if tree.constraints is not None
                else None]
    if isinstance(tree, _Or):
        out: List[Optional[List[Constraint]]] = []
        for part in tree.parts:
            out.extend(_dnf(part))
        return [c for c in out if c is not None] or [None]
    if isinstance(tree, _And):
        result: List[Optional[List[Constraint]]] = [[]]
        for part in tree.parts:
            expanded = _dnf(part)
            new_result = []
            for left in result:
                for right in expanded:
                    if left is None or right is None:
                        continue
                    new_result.append(left + right)
            result = new_result or [None]
        return result
    raise AssertionError(f"bad boolean node {tree!r}")


def parse(text: str):
    """Parse ISL notation into a :class:`Set` or :class:`Map`."""
    return _Parser(text).parse()


def parse_set(text: str) -> Set:
    result = parse(text)
    if not isinstance(result, Set):
        raise ParseError("expected a set, parsed a map")
    return result


def parse_map(text: str) -> Map:
    result = parse(text)
    if isinstance(result, Set):
        raise ParseError("expected a map, parsed a set")
    return result
