"""A Pluto-style automatic scheduler (the PENCIL / Pluto / Polly
comparator of the paper — DESIGN.md substitution table).

The heuristic mirrors what Section II-a describes: "the Pluto automatic
scheduling algorithm tries to minimize the distance between producer and
consumer statements while maximizing outermost parallelism, but it does
not consider data layout, redundant computations, or the complexity of
the control of the generated code".  Concretely:

1. **Fusion-first**: for each producer-consumer pair, fuse at the
   deepest loop level that dependence analysis proves legal (minimizing
   reuse distance) — even when that requires permuting loops, and even
   when the permutation destroys spatial locality (the paper's gaussian
   anecdote).
2. **Tiling**: tile the two outermost dimensions of every nest.
3. **Outermost parallelism**: parallelize the outermost loop not
   carrying a dependence.
4. **Never**: vectorization, unrolling, array packing, register
   blocking, or full/partial-tile separation — the optimizations the
   paper lists as missing from fully automatic compilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.computation import Computation, Input, Operation
from repro.core.deps import carried_at_level, check_schedule_legality
from repro.core.errors import IllegalScheduleError, ScheduleError
from repro.ir.expr import accesses_in


@dataclass
class AutoScheduleReport:
    fused: List[Tuple[str, str, int]] = field(default_factory=list)
    tiled: List[str] = field(default_factory=list)
    parallelized: List[Tuple[str, int]] = field(default_factory=list)
    interchanged: List[str] = field(default_factory=list)


def _schedulable(fn) -> List[Computation]:
    return [c for c in fn.active_computations()
            if not isinstance(c, (Input, Operation)) and c.expr is not None]


def _producer_pairs(fn) -> List[Tuple[Computation, Computation]]:
    comps = _schedulable(fn)
    pairs = []
    for cons in comps:
        for acc in accesses_in(cons.expr):
            prod = acc.computation
            if prod in comps and prod is not cons \
                    and (prod, cons) not in pairs:
                pairs.append((prod, cons))
    return pairs


def _try_fuse(fn, prod: Computation, cons: Computation,
              report: AutoScheduleReport,
              allow_interchange: bool = True) -> bool:
    """Fuse consumer after producer at the deepest legal shared level."""
    max_level = min(len(prod.time_names), len(cons.time_names)) - 1
    for level in range(max_level, -1, -1):
        mark = len(fn.order_directives)
        fn.order_after(cons, prod, level)
        try:
            check_schedule_legality(fn)
            report.fused.append((prod.name, cons.name, level))
            return True
        except IllegalScheduleError:
            del fn.order_directives[mark:]
            fn._beta = None
    if allow_interchange and len(cons.time_names) >= 2:
        # Pluto willingly permutes loops to enable fusion (minimizing
        # reuse distance), ignoring the spatial-locality cost — the
        # suboptimal gaussian decision of Section VI-B.
        cons.interchange(cons.time_names[0], cons.time_names[1])
        report.interchanged.append(cons.name)
        if _try_fuse(fn, prod, cons, report, allow_interchange=False):
            return True
        cons.interchange(cons.time_names[0], cons.time_names[1])
        report.interchanged.pop()
    return False


def pluto_schedule(fn, tile_size: int = 32,
                   fuse: bool = True) -> AutoScheduleReport:
    """Apply the automatic schedule to ``fn`` in place."""
    report = AutoScheduleReport()
    if fuse:
        for prod, cons in _producer_pairs(fn):
            _try_fuse(fn, prod, cons, report)
    for comp in _schedulable(fn):
        if len(comp.time_names) >= 2:
            l0, l1 = comp.time_names[0], comp.time_names[1]
            try:
                comp.tile(l0, l1, tile_size, tile_size)
                report.tiled.append(comp.name)
            except ScheduleError:
                pass
    for comp in _schedulable(fn):
        for level in range(min(2, len(comp.time_names))):
            if not carried_at_level(fn, comp, level):
                comp.parallelize(comp.time_names[level])
                report.parallelized.append((comp.name, level))
                break
    try:
        check_schedule_legality(fn)
    except IllegalScheduleError:
        # Tiling/parallelization after fusion should be legal; if not,
        # report it loudly — the auto-scheduler must never emit wrong
        # code.
        raise
    return report
