"""Auto-found vs hand-written schedules, measured (fig-style table).

The paper's central argument for a scheduling *language* is that expert
schedules beat fixed automatic heuristics; the autoscheduler closes the
loop by searching the same language.  This module measures all three
points per kernel — unscheduled baseline, the hand-written evaluation
schedule, and the ``autoschedule()`` winner compiled through the
driver's ``autoschedule`` option — and reports the auto/hand ratio the
tier-2 gate bounds at 1.2x (benchmarks/test_autosched_perf.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.autosched import autoschedule


@dataclass
class AutoVsHandRow:
    """One kernel's three measured points plus search accounting."""

    benchmark: str
    strategy: str
    naive_seconds: float
    hand_seconds: float
    auto_seconds: float
    plan_actions: int
    candidates: int
    pruned_illegal: int

    @property
    def auto_vs_hand(self) -> float:
        """< 1.0 means the search beat the expert."""
        return (self.auto_seconds / self.hand_seconds
                if self.hand_seconds > 0 else float("inf"))

    @property
    def auto_speedup(self) -> float:
        return (self.naive_seconds / self.auto_seconds
                if self.auto_seconds > 0 else 0.0)


def time_kernel(kernel, inputs: Dict[str, np.ndarray],
                params: Dict[str, int], repeats: int = 3) -> float:
    """Min wall-clock over ``repeats`` runs on fresh input copies."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        args = {k: np.copy(v) for k, v in inputs.items()}
        t0 = time.perf_counter()
        kernel(**args, **params)
        best = min(best, time.perf_counter() - t0)
    return best


def compare_kernel(builder: Callable, hand_schedule: Callable,
                   params: Optional[Dict[str, int]] = None,
                   strategy: str = "beam", budget: int = 60,
                   repeats: int = 3, seed: int = 0,
                   **search_kw) -> AutoVsHandRow:
    """Measure naive / hand / auto for one kernel bundle.

    Three separate bundles keep the schedules independent; the auto
    variant compiles the *pristine* function with the winning plan in
    the ``autoschedule`` option, exactly as a production caller would.
    """
    naive = builder()
    run_params = dict(params or naive.test_params)
    rng = np.random.default_rng(seed)
    inputs = naive.make_inputs(run_params, rng)

    naive_s = time_kernel(naive.function.compile("cpu"), inputs,
                          run_params, repeats)

    hand = builder()
    hand_schedule(hand)
    hand_s = time_kernel(hand.function.compile("cpu"), inputs,
                         run_params, repeats)

    auto = builder()
    result = autoschedule(auto.function, strategy=strategy, budget=budget,
                          params=run_params, **search_kw)
    kernel = auto.function.compile("cpu", autoschedule=result.plan)
    auto_s = time_kernel(kernel, inputs, run_params, repeats)

    return AutoVsHandRow(
        benchmark=naive.name, strategy=strategy,
        naive_seconds=naive_s, hand_seconds=hand_s, auto_seconds=auto_s,
        plan_actions=len(result.plan), candidates=result.candidates,
        pruned_illegal=result.pruned_illegal)


def _comparison_kernels():
    from repro.kernels.dnn import build_conv, schedule_conv_cpu
    from repro.kernels.linalg import build_sgemm, schedule_sgemm_cpu

    def hand_sgemm(bundle):
        # Test-scale tile sizes (the paper's 64x64 degenerates at the
        # comparison problem sizes).
        schedule_sgemm_cpu(bundle, 8, 4)

    return [(build_sgemm, hand_sgemm),
            (build_conv, schedule_conv_cpu)]


def auto_vs_hand_table(params: Optional[Dict[str, int]] = None,
                       strategy: str = "beam", budget: int = 60,
                       **search_kw) -> List[AutoVsHandRow]:
    """The comparison over the gateable kernels (sgemm + conv)."""
    return [compare_kernel(builder, hand, params=params,
                           strategy=strategy, budget=budget, **search_kw)
            for builder, hand in _comparison_kernels()]


def render_auto_vs_hand(rows: List[AutoVsHandRow]) -> str:
    lines = [f"{'benchmark':<10} {'strategy':<13} {'naive ms':>9} "
             f"{'hand ms':>9} {'auto ms':>9} {'auto/hand':>10} "
             f"{'actions':>8} {'cands':>6} {'pruned':>7}"]
    for r in rows:
        lines.append(
            f"{r.benchmark:<10} {r.strategy:<13} "
            f"{r.naive_seconds * 1e3:>9.3f} {r.hand_seconds * 1e3:>9.3f} "
            f"{r.auto_seconds * 1e3:>9.3f} {r.auto_vs_hand:>9.2f}x "
            f"{r.plan_actions:>8} {r.candidates:>6} "
            f"{r.pruned_illegal:>7}")
    return "\n".join(lines)
