"""Tier-2 perf gate: the polyhedral hot path (PR 5).

Legality checking decides every question by emptiness of a dependence-
violation set; this gate pins two promises the ISL-layer optimizations
make:

1. A cold ``compile(check_legality=True)`` of the Fig. 1 sgemm pipeline
   is at least 3x faster than the same compile with every optimization
   off (memo caches disabled, pre-filters / unit elimination / rational
   fast-path off — the pre-PR algorithm, measured on the same machine
   so the gate is robust to host speed).
2. Caching is invisible in the output: the emitted backend source is
   byte-identical with the memo caches on and off.
"""

import time

from conftest import print_table
from repro.driver import kernel_registry
from repro.driver.pipeline import compile_function
from repro.isl import isl_cache_clear, isl_cache_disabled, isl_cache_stats
from repro.isl import omega
from repro.kernels import build_sgemm, schedule_sgemm_cpu


def _fresh_sgemm():
    bundle = build_sgemm()
    schedule_sgemm_cpu(bundle, 32, 8)
    return bundle.function


def _cold_compile(fn):
    kernel_registry.clear()
    start = time.perf_counter()
    kernel = compile_function(fn, target="cpu", cache=False,
                              check_legality=True)
    return kernel, time.perf_counter() - start


class TestIslHotPathPerf:
    def test_optimized_at_least_3x_faster_than_legacy(self):
        # One throwaway compile first so lazy imports and other one-time
        # process costs land outside both measured runs.
        _cold_compile(_fresh_sgemm())

        # Optimized path: memo caches + pre-filters + unit elimination +
        # rational fast-path, exactly as a user compile runs them.
        # Counters are cumulative process-wide, so diff around one run.
        isl_cache_clear()
        before = isl_cache_stats()
        kernel, optimized = _cold_compile(_fresh_sgemm())
        after = kernel.report.isl_cache_stats
        stats = {k: after[k] - before.get(k, 0)
                 for k in ("empty_hits", "empty_misses",
                           "compose_hits", "compose_misses")}
        for __ in range(2):
            isl_cache_clear()
            _, t = _cold_compile(_fresh_sgemm())
            optimized = min(optimized, t)

        # Legacy path: the pre-PR algorithm on this same machine.
        legacy = float("inf")
        for __ in range(3):
            with isl_cache_disabled(), omega.legacy_mode():
                _, t = _cold_compile(_fresh_sgemm())
            legacy = min(legacy, t)

        speedup = legacy / optimized
        print_table("isl hot path: cold sgemm + legality (cpu)", {
            "legacy compile (ms)": round(legacy * 1e3, 2),
            "optimized compile (ms)": round(optimized * 1e3, 2),
            "speedup": round(speedup, 1),
            "empty memo": f"{stats['empty_hits']} hits / "
                          f"{stats['empty_misses']} misses",
            "compose memo": f"{stats['compose_hits']} hits / "
                            f"{stats['compose_misses']} misses",
        })
        # The memo must have actually been exercised, not just fast.
        assert stats["empty_hits"] > 0
        assert stats["empty_misses"] > 0
        assert speedup >= 3.0, (
            f"optimized legality compile only {speedup:.1f}x faster "
            "than the legacy algorithm")

    def test_counters_visible_in_metrics_registry(self):
        from repro.obs.metrics import metrics
        isl_cache_clear()
        _cold_compile(_fresh_sgemm())
        assert metrics.counter("isl.empty_cache.misses").value > 0
        assert metrics.counter("isl.empty_cache.hits").value > 0
        assert isl_cache_stats()["empty_size"] > 0

    def _emitted_source(self, mode: str) -> str:
        """Compile a fresh sgemm in the given mode and return the
        emitted backend source from the registry entry."""
        fn = _fresh_sgemm()
        kernel_registry.clear()
        if mode == "legacy":
            with isl_cache_disabled(), omega.legacy_mode():
                k = compile_function(fn, target="cpu", cache=True,
                                     check_legality=True)
        elif mode == "cache-off":
            with isl_cache_disabled():
                k = compile_function(fn, target="cpu", cache=True,
                                     check_legality=True)
        else:
            k = compile_function(fn, target="cpu", cache=True,
                                 check_legality=True)
        entry = kernel_registry.get(k.report.fingerprint)
        assert entry is not None and not k.report.cache_hit
        return entry.source

    def test_emitted_source_byte_identical_cache_on_off(self):
        isl_cache_clear()
        assert (self._emitted_source("optimized")
                == self._emitted_source("cache-off"))

    def test_emitted_source_byte_identical_vs_legacy(self):
        """Not just cache on/off: the whole optimized pipeline and the
        legacy algorithm must emit the same bytes."""
        isl_cache_clear()
        assert (self._emitted_source("optimized")
                == self._emitted_source("legacy"))
