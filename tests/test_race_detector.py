"""The static race detector (Section V legality applied to parallel
tags): ``check_parallel_legality`` rejects any parallel/vector/
distributed tag whose level carries a dependence, and runs as the
pipeline's ``race-check`` stage for compiles that will use real cores.
"""

import numpy as np
import pytest

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.core.deps import (RACE_CHECKED_TAGS, check_parallel_legality)
from repro.core.errors import IllegalScheduleError
from repro.kernels.image import build_blur
from repro.kernels.linalg import build_sgemm


def build_gauss_seidel():
    """The wavefront example's Gauss-Seidel sweep: dependences carried
    in both loops until skewed."""
    N = Param("N")
    with Function("gs", params=[N]) as fn:
        rhs = Input("rhs", [Var("x", 0, N), Var("y", 0, N)])
        ubuf = Buffer("u", [N, N])
        init = Computation("init", [Var("i0", 0, N), Var("j0", 0, N)],
                           None)
        init.set_expression(rhs(Var("i0", 0, N), Var("j0", 0, N)))
        init.store_in(ubuf, [Var("i0", 0, N), Var("j0", 0, N)])
        i, j = Var("i", 1, N), Var("j", 1, N)
        sweep = Computation("sweep", [i, j], None)
        sweep.set_expression((rhs(i, j) + sweep(i - 1, j)
                              + sweep(i, j - 1)) / 4.0)
        sweep.store_in(ubuf, [i, j])
        sweep.after(init, None)
    return fn, sweep


class TestDetector:
    def test_legal_blur_outer_parallel(self):
        bundle = build_blur()
        bundle.computations["bx"].parallelize("iw")
        bundle.computations["by"].parallelize("i")
        # Both tags race-free: returns the number of checked levels.
        assert check_parallel_legality(bundle.function) == 2

    def test_reduction_loop_rejected(self):
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("k")
        with pytest.raises(IllegalScheduleError) as exc:
            check_parallel_legality(bundle.function)
        msg = str(exc.value)
        assert "'acc'" in msg and "'k'" in msg
        assert "flow dependence acc -> acc" in msg
        assert "buffer C" in msg

    def test_unskewed_wavefront_rejected(self):
        fn, sweep = build_gauss_seidel()
        sweep.parallelize("i")
        with pytest.raises(IllegalScheduleError) as exc:
            check_parallel_legality(fn)
        msg = str(exc.value)
        assert "'sweep'" in msg and "sweep -> sweep" in msg
        assert "buffer u" in msg

    def test_skewed_wavefront_inner_rejected_outer_legal(self):
        # Skewing makes the anti-diagonal ("j") race-free; the
        # wavefront-ordering loop ("i") still carries the recurrence.
        fn, sweep = build_gauss_seidel()
        sweep.skew("j", "i", 1)
        sweep.parallelize("i")
        with pytest.raises(IllegalScheduleError) as exc:
            check_parallel_legality(fn)
        assert "'sweep'" in str(exc.value)

        fn2, sweep2 = build_gauss_seidel()
        sweep2.skew("j", "i", 1)
        sweep2.parallelize("j")
        assert check_parallel_legality(fn2) == 1

    def test_no_tags_is_free(self):
        bundle = build_sgemm()
        assert check_parallel_legality(bundle.function) == 0

    def test_kinds_filter(self):
        bundle = build_sgemm()
        bundle.computations["acc"].vectorize("k", 8)
        # An illegal vector tag trips the full check ...
        with pytest.raises(IllegalScheduleError):
            check_parallel_legality(bundle.function,
                                    kinds=RACE_CHECKED_TAGS)
        # ... but not a parallel-only check (the emitter's scalar
        # fallback keeps illegal vector lanes correct).
        assert check_parallel_legality(bundle.function,
                                       kinds=("parallel",)) == 0


class TestPipelineStage:
    def test_race_check_stage_runs_for_parallel_compiles(self):
        bundle = build_blur()
        bundle.computations["by"].parallelize("i")
        kernel = bundle.function.compile("cpu", num_threads=2)
        assert "race-check" in kernel.report.stage_names()
        assert kernel.report.races_checked == 1
        assert kernel.report.stage_seconds("race-check") is not None

    def test_race_check_skipped_sequentially(self):
        bundle = build_blur()
        bundle.computations["by"].parallelize("i")
        kernel = bundle.function.compile("cpu", num_threads=1)
        assert "race-check" not in kernel.report.stage_names()

    def test_illegal_parallel_compile_raises(self):
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("k")
        with pytest.raises(IllegalScheduleError) as exc:
            bundle.function.compile("cpu", num_threads=2)
        assert "data race" in str(exc.value)

    def test_check_races_true_is_strict(self):
        # Strict mode checks vector tags on any worker count.
        bundle = build_sgemm()
        bundle.computations["acc"].vectorize("k", 8)
        with pytest.raises(IllegalScheduleError):
            bundle.function.compile("cpu", num_threads=1,
                                    check_races=True)

    def test_check_races_false_disables(self):
        bundle = build_sgemm()
        bundle.computations["acc"].parallelize("k")
        kernel = bundle.function.compile("cpu", num_threads=2,
                                         check_races=False)
        assert kernel is not None

    def test_race_check_in_trace_table(self):
        bundle = build_blur()
        bundle.computations["by"].parallelize("i")
        kernel = bundle.function.compile("cpu", num_threads=2,
                                         cache=False)
        table = kernel.report.format_table()
        assert "race-check" in table
        assert "race-free" in table
