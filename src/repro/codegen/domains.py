"""Preparation of scheduled iteration sets for loop synthesis.

Two responsibilities:

1. *Exact* elimination of existential (div) dimensions from instance
   sets — loop bounds and guards must be emitted over loop variables and
   parameters only.  Elimination is refused (rather than approximated)
   when it would change the integer set, so generated code is always
   correct.
2. Coalescing of overlapping union pieces (e.g. the shifted windows that
   ``compute_at`` produces for a stencil) into single convex pieces, so
   the generated loop nest does not re-execute instances.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import CodegenError
from repro.isl import BasicSet, Constraint, Set
from repro.isl.constraint import EQ
from repro.isl.fourier_motzkin import eliminate_dim
from repro.isl.linexpr import DIV, LinExpr
from repro.isl.simplify import remove_redundant


def eliminate_divs_exact(piece: BasicSet) -> BasicSet:
    """Remove all div dims, guaranteeing the integer set is unchanged.

    A div can be removed exactly when (a) it occurs in an equality with a
    ±1 coefficient (substitute it away), or (b) every occurrence has a ±1
    coefficient (Fourier-Motzkin is integer-exact for unit coefficients).
    Strided sets (non-unit div coefficients everywhere) are rejected.
    """
    cons = list(piece.constraints)
    remaining = set()
    for c in cons:
        for kind, idx in c.expr.dims():
            if kind == DIV:
                remaining.add(idx)
    progress = True
    while remaining and progress:
        progress = False
        for idx in sorted(remaining):
            dim = (DIV, idx)
            coeffs = [int(c.expr.coeff(dim)) for c in cons
                      if c.involves(dim)]
            if not coeffs:
                remaining.discard(idx)
                progress = True
                break
            has_unit_eq = any(
                c.kind == EQ and abs(int(c.expr.coeff(dim))) == 1
                for c in cons if c.involves(dim))
            all_unit = all(abs(v) == 1 for v in coeffs)
            if has_unit_eq or all_unit:
                cons = eliminate_dim(cons, dim)
                remaining.discard(idx)
                progress = True
                break
    if remaining:
        raise CodegenError(
            "cannot generate loops for a strided iteration set "
            f"(existential dims with non-unit coefficients): {piece!r}")
    return BasicSet(piece.space, cons, n_div=0)


def _try_merge(a: BasicSet, b: BasicSet) -> Optional[BasicSet]:
    """Merge two pieces into their common-constraint hull if that hull is
    exactly their union."""
    from repro.isl.simplify import _implied
    common: List[Constraint] = []
    for c in a.constraints:
        if _implied(list(b.constraints), c):
            common.append(c)
    for c in b.constraints:
        if c in common:
            continue
        if _implied(list(a.constraints), c):
            common.append(c)
    hull = BasicSet(a.space, common)
    # hull ⊇ a ∪ b by construction; check hull ⊆ a ∪ b.
    union = Set([a, b])
    if Set([hull]).is_subset(union):
        return remove_redundant(hull)
    return None


def prepare_pieces(instances: Set) -> List[BasicSet]:
    """Div-eliminate, simplify and coalesce the pieces of an instance set."""
    pieces = [eliminate_divs_exact(p) for p in instances.pieces]
    pieces = [remove_redundant(p) for p in pieces]
    pieces = [p for p in pieces if not p.is_empty()]
    changed = True
    while changed and len(pieces) > 1:
        changed = False
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                merged = _try_merge(pieces[i], pieces[j])
                if merged is not None:
                    pieces = ([p for k, p in enumerate(pieces)
                               if k not in (i, j)] + [merged])
                    changed = True
                    break
            if changed:
                break
    return pieces
