"""Fault tolerance in the simulated-MPI runtime: rank-failure
propagation (peers fail fast naming the dead rank), deadlock detection
with the wait-for cycle, hung-rank detection at join, and deterministic
message drop/corruption on the simulated links."""

import time

import numpy as np
import pytest

from repro import (ASYNC, SYNC, Buffer, Computation, Function, Input,
                   Param, Var, receive, send)
from repro.core.errors import (DeadlockError, ExecutionError,
                               RankFailedError)
from repro.driver import kernel_registry
from repro.faults import FaultPlan, injected, uninstall


@pytest.fixture(autouse=True)
def _fresh():
    kernel_registry.clear()
    uninstall()
    yield
    uninstall()
    kernel_registry.clear()


def build_halo_stencil():
    R, Nodes = Param("R"), Param("Nodes")
    f = Function("dstencil", params=[R, Nodes])
    with f:
        lin = Input("lin", [Var("x", 0, R + 1)])
        s_it = Var("s", 1, Nodes)
        r_it = Var("r", 0, Nodes - 1)
        s_op = send([s_it], lin.get_buffer(), 0, 1, s_it - 1, (ASYNC,))
        r_op = receive([r_it], lin.get_buffer(), R, 1, r_it + 1, (SYNC,),
                       matching_send=s_op)
        i = Var("i", 0, R)
        out = Computation("out", [i], None)
        out.set_expression(lin(i) + lin(i + 1))
    s_op.distribute("s")
    r_op.distribute("r")
    r_op.after(s_op)
    out.after(r_op)
    return f


def halo_inputs(ranks, rows):
    full = np.arange(ranks * rows, dtype=np.float64)
    return full, {"lin": [
        np.concatenate([full[q * rows:(q + 1) * rows], [0.0]])
        for q in range(ranks)]}


def run_halo(kernel, ranks=4, rows=5, **kw):
    _, inputs = halo_inputs(ranks, rows)
    return kernel(ranks=ranks, inputs=inputs,
                  params={"R": rows, "Nodes": ranks}, **kw)


class TestRankFailurePropagation:
    def test_peers_fail_fast_naming_the_dead_rank(self):
        kernel = build_halo_stencil().compile("distributed")
        start = time.monotonic()
        with injected(FaultPlan().crash_rank(1)) as plan:
            with pytest.raises(ExecutionError) as err:
                run_halo(kernel, ranks=4, timeout=10.0)
        elapsed = time.monotonic() - start
        # Fail-fast: nowhere near the 10s receive timeout.
        assert elapsed < 5.0
        assert plan.fired("rank-crash") == 1
        assert "rank 1" in str(err.value)
        assert "injected fault" in str(err.value)

    def test_failure_ledger_names_root_cause_and_victims(self):
        kernel = build_halo_stencil().compile("distributed")
        with injected(FaultPlan().crash_rank(1)):
            with pytest.raises(ExecutionError):
                run_halo(kernel, ranks=4, timeout=10.0)
        failures = kernel.last_failures
        assert 1 in failures                     # the crashed rank
        assert "InjectedFaultError" in failures[1]
        # rank 0 was waiting on rank 1's halo row: poisoned channel
        assert 0 in failures
        assert "peer rank 1 failed" in failures[0]

    def test_rank_failure_counts_into_metrics(self):
        from repro.obs.metrics import metrics
        metrics.reset()
        kernel = build_halo_stencil().compile("distributed")
        with injected(FaultPlan().crash_rank(2)):
            with pytest.raises(ExecutionError):
                run_halo(kernel, ranks=4, timeout=10.0)
        assert metrics.counter("dist.rank_failures").value == 1
        assert metrics.counter("dist.rank_failure_propagations").value >= 1

    def test_fault_free_run_unaffected_by_installed_plan(self):
        # A plan addressing a rank this run never reaches is inert.
        kernel = build_halo_stencil().compile("distributed")
        with injected(FaultPlan().crash_rank(99)) as plan:
            res = run_halo(kernel, ranks=2)
        assert plan.fired() == 0
        assert all(r is not None for r in res)


def build_cross_receive():
    """Two ranks, each receiving from the other, nobody sending: the
    canonical wait-for cycle."""
    Nodes = Param("Nodes")
    f = Function("deadlock", params=[Nodes])
    with f:
        buf = Buffer("b", [4])
        ra = Var("ra", 0, 1)      # rank 0 only (upper bound exclusive)
        rb = Var("rb", 1, 2)      # rank 1 only
        r_a = receive([ra], buf, 0, 1, ra + 1)
        r_b = receive([rb], buf, 0, 1, rb - 1)
        c = Computation("c", [Var("i", 0, 4)], 0.0)
        c.store_in(buf, [Var("i", 0, 4)])
    r_a.distribute("ra")
    r_b.distribute("rb")
    r_b.after(r_a)
    c.after(r_b)
    return f


class TestDeadlockDetection:
    def test_cross_receive_reports_the_cycle(self):
        kernel = build_cross_receive().compile("distributed")
        start = time.monotonic()
        with pytest.raises(ExecutionError) as err:
            kernel(ranks=2, inputs={}, params={"Nodes": 2}, timeout=10.0)
        elapsed = time.monotonic() - start
        # Detected by cycle traversal, not by waiting out the timeout.
        assert elapsed < 5.0
        msg = str(err.value)
        assert "deadlock" in msg
        assert "rank 0 -> rank 1 -> rank 0" in msg \
            or "rank 1 -> rank 0 -> rank 1" in msg

    def test_deadlock_error_carries_the_cycle(self):
        kernel = build_cross_receive().compile("distributed")
        with pytest.raises(ExecutionError) as err:
            kernel(ranks=2, inputs={}, params={"Nodes": 2}, timeout=10.0)
        cause = err.value.__cause__
        assert isinstance(cause, DeadlockError)
        assert set(cause.cycle) == {0, 1}
        from repro.obs.metrics import metrics
        assert metrics.counter("dist.deadlocks").value >= 1


class TestHungRankDetection:
    def build_compute_only(self):
        P, Nodes = Param("P"), Param("Nodes")
        f = Function("hang", params=[P, Nodes])
        with f:
            q, i = Var("q", 0, Nodes), Var("i", 0, P)
            c = Computation("c", [q, i], 1.0)
        c.distribute("q")
        return f

    def test_hung_rank_raises_instead_of_returning_none(self):
        # Regression: a rank outliving the join used to leave
        # results[rank] = None and return "successfully".
        kernel = self.build_compute_only().compile("distributed")
        with injected(FaultPlan().hang_rank(0, seconds=15.0)) as plan:
            with pytest.raises(ExecutionError) as err:
                kernel(ranks=1, inputs={}, params={"P": 4, "Nodes": 1},
                       timeout=0.3)
        assert plan.fired("rank-hang") == 1
        msg = str(err.value)
        assert "hung" in msg and "rank(s) 0" in msg
        assert "still running" in msg
        from repro.obs.metrics import metrics
        assert metrics.counter("dist.hung_ranks").value >= 1

    def test_healthy_run_returns_all_results(self):
        kernel = self.build_compute_only().compile("distributed")
        res = kernel(ranks=2, inputs={}, params={"P": 4, "Nodes": 2})
        assert len(res) == 2
        assert all(r is not None for r in res)


class TestMessageFaults:
    def test_dropped_message_times_out_the_receiver(self):
        kernel = build_halo_stencil().compile("distributed")
        start = time.monotonic()
        plan = FaultPlan().drop_message(src=1, dst=0, message=0)
        with injected(plan):
            with pytest.raises(ExecutionError) as err:
                run_halo(kernel, ranks=2, timeout=0.5)
        elapsed = time.monotonic() - start
        assert plan.fired("message-drop") == 1
        assert 0.4 < elapsed < 5.0
        assert "timed out" in str(err.value)
        assert "receive from 1" in str(err.value)
        from repro.obs.metrics import metrics
        assert metrics.counter("dist.messages_dropped").value >= 1

    def test_corrupted_message_is_deterministic(self):
        _, clean_inputs = halo_inputs(2, 5)
        clean = np.concatenate([
            r["out"] for r in build_halo_stencil().compile("distributed")(
                ranks=2, inputs=clean_inputs,
                params={"R": 5, "Nodes": 2})])
        outs = []
        for _ in range(2):
            kernel = build_halo_stencil().compile("distributed", cache=False)
            plan = FaultPlan(seed=42).corrupt_message(src=1, dst=0,
                                                      message=0)
            with injected(plan):
                res = run_halo(kernel, ranks=2)
            assert plan.fired("message-corrupt") == 1
            outs.append(np.concatenate([r["out"] for r in res]))
        # The run completes, the payload damage shows in the output,
        # and the same seed flips the same bytes every time.
        assert outs[0].tobytes() != clean.tobytes()
        assert outs[0].tobytes() == outs[1].tobytes()

    def test_different_seeds_corrupt_differently(self):
        outs = []
        for seed in (1, 2):
            kernel = build_halo_stencil().compile("distributed", cache=False)
            with injected(FaultPlan(seed=seed).corrupt_message(
                    src=1, dst=0, message=0)):
                res = run_halo(kernel, ranks=2)
            outs.append(np.concatenate([r["out"] for r in res]))
        assert outs[0].tobytes() != outs[1].tobytes()


class TestBarrierDeadlockDiagnosis:
    """Regression: a barrier broken by *timeout* with an empty failure
    ledger used to raise the generic "barrier broken" ExecutionError
    even when the peers were provably deadlocked in recv.  A barrier
    waiter is never in the wait-for table, so the recv-side detector's
    "every live rank blocked in recv" precondition could not hold; the
    barrier path now probes the remaining receivers itself."""

    def test_barrier_timeout_names_the_recv_cycle(self):
        import threading

        from repro.backends.distributed import MPIRuntime, World
        world = World(3)
        r0 = MPIRuntime(0, world, timeout=0.6)
        r1 = MPIRuntime(1, world, timeout=4.0)
        r2 = MPIRuntime(2, world, timeout=4.0)
        side_errors = []

        def blocked_recv(rt, source):
            try:
                rt.recv(source)
            except Exception as exc:   # noqa: BLE001 - recorded, not hidden
                side_errors.append(exc)

        threads = [threading.Thread(target=blocked_recv, args=(r1, 2)),
                   threading.Thread(target=blocked_recv, args=(r2, 1))]
        for t in threads:
            t.start()
        time.sleep(0.1)   # let both receivers register as waiting
        start = time.monotonic()
        with pytest.raises(DeadlockError) as err:
            r0.barrier()
        assert time.monotonic() - start < 3.0
        assert set(err.value.cycle) == {1, 2}
        msg = str(err.value)
        assert "barrier broken" in msg
        assert "wait-for cycle" in msg
        # Unblock the side threads (their own receives still time out).
        world.mark_failed(0, RuntimeError("test torn down"))
        for t in threads:
            t.join()
        assert len(side_errors) == 2

    def test_plain_barrier_timeout_still_generic(self):
        from repro.backends.distributed import MPIRuntime, World
        world = World(2)
        r0 = MPIRuntime(0, world, timeout=0.3)
        # Rank 1 simply never arrives and is not blocked on anyone:
        # no cycle to report, so the generic timeout error stands.
        with pytest.raises(ExecutionError) as err:
            r0.barrier()
        assert not isinstance(err.value, DeadlockError)
        assert "barrier broken" in str(err.value)

    def test_pending_payload_breaks_the_cycle(self):
        from repro.backends.distributed import MPIRuntime, World
        world = World(3)
        r0 = MPIRuntime(0, world, timeout=0.4)
        r2 = MPIRuntime(2, world, timeout=3.0)
        # rank 2's message to rank 1 is already on the wire: the
        # apparent 1 -> 2 -> 1 wait loop is *not* a deadlock, rank 1
        # is just slow to drain its channel.
        r2.isend(1, np.ones(2))
        world.note_waiting(1, 2)
        world.note_waiting(2, 1)
        assert world.recv_cycle() is None
        with pytest.raises(ExecutionError) as err:
            r0.barrier()
        assert not isinstance(err.value, DeadlockError)
