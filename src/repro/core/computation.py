"""Computations: the statements of a Tiramisu program (paper Section III-B).

A :class:`Computation` couples an iteration domain (Layer I) with an
expression to compute.  Scheduling commands (Table II of the paper) are
methods; they rewrite the computation's time representation (see
:mod:`repro.core.schedule`).  :class:`Input` is a computation with no
expression whose values come from an argument buffer; :class:`Operation`
is the paper's special computation that returns no value (allocation,
copies, sends/receives, barriers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import types as T
from repro.ir.affine import NonAffineError, expr_to_linexpr
from repro.ir.expr import Access, Expr, wrap
from repro.isl import (IN, OUT, PARAM, BasicMap, BasicSet, Constraint,
                       LinExpr, Map, Set, Space)

from . import schedule as S
from .buffer import ArgKind, Buffer
from .errors import ScheduleError, TiramisuError
from .var import Param, Var


class Computation:
    """A statement defined over an iteration domain."""

    def __init__(self, name: str, variables: Sequence[Var], expr=None,
                 dtype=T.float32, fn=None):
        from .function import current_function
        self.function = fn if fn is not None else current_function()
        if self.function is None:
            raise TiramisuError(
                f"computation {name!r} declared outside a Function; "
                "use 'with Function(...):' or pass fn=")
        self.name = name
        self.vars: List[Var] = list(variables)
        for v in self.vars:
            if not v.has_range:
                raise TiramisuError(
                    f"{name}: iteration variable {v.name} needs a range")
        self.var_names: List[str] = [v.name for v in self.vars]
        self.dtype = dtype
        self.expr: Optional[Expr] = wrap(expr) if expr is not None else None
        self.predicate: Optional[Expr] = None

        self.function._register(self)
        self.domain: Set = self._build_domain()

        # -- schedule state (see repro.core.schedule) -------------------
        self.time_names: List[str] = list(self.var_names)
        self.instances: Set = self.domain
        self.rev: Dict[str, LinExpr] = {
            nm: LinExpr.dim(OUT, k) for k, nm in enumerate(self.var_names)}
        self.tags: Dict[int, S.Tag] = {}
        self.anchor: Optional[Tuple["Computation", int]] = None
        self.inlined = False

        # -- data mapping (Layer III) ------------------------------------
        self.buffer: Optional[Buffer] = None
        self.store_exprs: Optional[List[Expr]] = None  # over orig var names
        # producer name -> (shared buffer, origin LinExprs, n_prefix dims),
        # set by cache_shared_at / cache_local_at.
        self.cached_reads: Dict[str, Tuple] = {}
        # (shared buffer, origin LinExprs) when this computation stores
        # directly into a shared/local cache (cache_shared_at on a
        # compute_at-nested producer).
        self.cached_store: Optional[Tuple] = None

    # -- algorithm-level API ---------------------------------------------

    def __call__(self, *indices) -> Access:
        """Access this computation at the given indices (producer-consumer
        relationship; no memory semantics at Layer I)."""
        return Access(self, [wrap(i) for i in indices])

    def set_expression(self, expr) -> "Computation":
        self.expr = wrap(expr)
        return self

    def add_predicate(self, predicate) -> "Computation":
        """Attach a (possibly non-affine) guard, per paper Section V-B."""
        self.predicate = wrap(predicate)
        return self

    def _build_domain(self) -> Set:
        params = self.function.param_names
        space = Space.set_space(tuple(self.var_names), self.name, params)
        dim_table = {p: (PARAM, i) for i, p in enumerate(params)}
        dim_table.update({nm: (OUT, k)
                          for k, nm in enumerate(self.var_names)})
        cons: List[Constraint] = []
        for k, v in enumerate(self.vars):
            try:
                lo = expr_to_linexpr(v.lo, dim_table)
                hi = expr_to_linexpr(v.hi, dim_table)
            except NonAffineError as err:
                raise TiramisuError(
                    f"{self.name}: non-affine bound on {v.name}: {err}"
                ) from None
            cons.append(Constraint.ge(LinExpr.dim(OUT, k) - lo))
            cons.append(Constraint.ge(hi - LinExpr.dim(OUT, k) - 1))
        return Set([BasicSet(space, cons)])

    # -- loop-nest transformation commands (paper Table II) ----------------

    def tile(self, i, j, t1: int, t2: int, *names) -> "Computation":
        name_list = [n.name if isinstance(n, Var) else n for n in names] \
            if names else None
        S.apply_tile(self, i, j, t1, t2, name_list)
        return self

    def split(self, i, s: int, i0=None, i1=None) -> "Computation":
        base = i.name if isinstance(i, Var) else str(i)
        outer = (i0.name if isinstance(i0, Var) else i0) or f"{base}0"
        inner = (i1.name if isinstance(i1, Var) else i1) or f"{base}1"
        S.apply_split(self, i, s, outer, inner)
        return self

    def interchange(self, i, j) -> "Computation":
        S.apply_interchange(self, i, j)
        return self

    def shift(self, i, s: int) -> "Computation":
        S.apply_shift(self, i, s)
        return self

    def skew(self, i, j, factor: int) -> "Computation":
        S.apply_skew(self, i, j, factor)
        return self

    def unroll(self, i, factor: int) -> "Computation":
        l = S.level_index(self, i)
        self.tags[l] = S.Tag("unroll", factor)
        return self

    def set_schedule(self, isl_map_str: str) -> "Computation":
        S.apply_set_schedule(self, isl_map_str)
        return self

    def compute_at(self, consumer: "Computation", level) -> "Computation":
        S.apply_compute_at(self, consumer, level)
        return self

    def after(self, other: "Computation", level=None) -> "Computation":
        """Order this computation after ``other`` at the given loop level
        (sharing loop structure above it); root level if omitted."""
        l = -1 if level is None or level == "root" \
            else S.level_index(other, level)
        self.function.order_after(self, other, l)
        return self

    def before(self, other: "Computation", level=None) -> "Computation":
        l = -1 if level is None or level == "root" \
            else S.level_index(other, level)
        self.function.order_before(self, other, l)
        return self

    def then(self, other: "Computation", level=None) -> "Computation":
        """Fluent ordering: self then other (returns ``other``)."""
        other.after(self, level)
        return other

    def inline(self) -> "Computation":
        """Inline this computation into all of its consumers."""
        self.inlined = True
        return self

    def separate(self, level) -> Optional["Computation"]:
        """Full/partial tile separation at ``level``: split off the
        boundary iterations into a scalar epilogue computation so the
        full tiles vectorize without guards (paper Sections V-A, VI-A).
        Returns the epilogue computation, or None if nothing separates."""
        from .separate import separate as _separate
        return _separate(self, level)

    def separate_all(self, *levels) -> List["Computation"]:
        """Separate full from partial tiles at every given level,
        recursively covering the partial clones (so e.g. a 2-D GPU tile
        ends with uniform bounds in every launch — no divergence)."""
        comps: List["Computation"] = [self]
        partials: List["Computation"] = []
        for level in levels:
            new_partials = []
            for comp in comps:
                p = comp.separate(level)
                if p is not None:
                    new_partials.append(p)
            comps.extend(new_partials)
            partials.extend(new_partials)
        return partials

    # -- hardware mapping commands ------------------------------------------

    def parallelize(self, i) -> "Computation":
        self.tags[S.level_index(self, i)] = S.Tag("parallel")
        return self

    def vectorize(self, i, length: int) -> "Computation":
        self.tags[S.level_index(self, i)] = S.Tag("vector", length)
        return self

    def distribute(self, i) -> "Computation":
        self.tags[S.level_index(self, i)] = S.Tag("distributed")
        return self

    def gpu(self, i0, i1, i2, i3) -> "Computation":
        """Map (i0, i1) to GPU block dims and (i2, i3) to thread dims."""
        self.tags[S.level_index(self, i0)] = S.Tag("gpu_block")
        self.tags[S.level_index(self, i1)] = S.Tag("gpu_block")
        self.tags[S.level_index(self, i2)] = S.Tag("gpu_thread")
        self.tags[S.level_index(self, i3)] = S.Tag("gpu_thread")
        return self

    def tile_gpu(self, i, j, t1: int, t2: int, *names) -> "Computation":
        """tile + map the resulting loops onto the GPU grid."""
        self.tile(i, j, t1, t2, *names)
        l = S.level_index(self, _nm(names[0]) if names else f"{_nm(i)}0")
        self.tags[l] = S.Tag("gpu_block")
        self.tags[l + 1] = S.Tag("gpu_block")
        self.tags[l + 2] = S.Tag("gpu_thread")
        self.tags[l + 3] = S.Tag("gpu_thread")
        return self

    # -- communication / memory-hierarchy commands (paper's novel set) ----

    def cache_shared_at(self, consumer: "Computation", level) -> "Operation":
        """Stage this computation's buffer tile into GPU shared memory at
        the consumer's loop level (footprint/copy/sync automatic)."""
        from .buffer import MemSpace
        from .communication import cache_at
        return cache_at(self, consumer, level, MemSpace.GPU_SHARED)

    def cache_local_at(self, consumer: "Computation", level) -> "Operation":
        from .buffer import MemSpace
        from .communication import cache_at
        return cache_at(self, consumer, level, MemSpace.GPU_LOCAL)

    def host_to_device(self) -> "Operation":
        from .communication import host_to_device
        return host_to_device(self)

    def device_to_host(self) -> "Operation":
        from .communication import device_to_host
        return device_to_host(self)

    # -- data mapping commands (Layer III) ------------------------------------

    def store_in(self, buffer_or_dims, dims: Optional[Sequence] = None
                 ) -> "Computation":
        """store_in(b, {i, j}): store C(i, j, ...) into b[i, j].

        Accepts either a :class:`Buffer` plus index list, or just a list
        of dims/exprs (storing into the computation's default buffer with
        a permuted/contracted layout).
        """
        if isinstance(buffer_or_dims, Buffer):
            self.buffer = buffer_or_dims
            idx = dims
        else:
            idx = buffer_or_dims
        if idx is not None:
            self.store_exprs = [wrap(i.expr() if isinstance(i, Var) else i)
                                for i in idx]
        return self

    def store_in_isl(self, isl_map_str: str,
                     buffer: Optional[Buffer] = None) -> "Computation":
        """Set the data mapping from an affine relation in ISL syntax
        (paper Section IV-3: "Tiramisu allows any data-layout mapping
        expressible as an affine relation"), e.g.
        ``c.store_in_isl("{ c[i,j] -> b[j, i % 2] }")``."""
        from repro.isl.parser import parse_map
        from repro.isl.linexpr import IN as ISL_IN, OUT as ISL_OUT
        m = parse_map(isl_map_str)
        if len(m.pieces) != 1:
            raise ScheduleError("store_in_isl needs a single-piece map")
        bmap = m.pieces[0]
        if len(bmap.space.in_dims) != len(self.var_names):
            raise ScheduleError(
                f"store_in_isl: map has {len(bmap.space.in_dims)} input "
                f"dims, domain has {len(self.var_names)}")
        exprs: List[Expr] = []
        n_out = len(bmap.space.out_dims)
        for k in range(n_out):
            found = None
            for c in bmap.constraints:
                if c.kind != "eq":
                    continue
                coeff = int(c.expr.coeff((ISL_OUT, k)))
                if abs(coeff) != 1:
                    continue
                if any(d[0] == ISL_OUT and d != (ISL_OUT, k)
                       for d in c.expr.dims()):
                    continue
                rest = (c.expr - LinExpr.dim(ISL_OUT, k, coeff)) * (-coeff)
                found = rest
                break
            if found is None:
                raise ScheduleError(
                    f"store_in_isl: output dim {k} is not an affine "
                    "function of the domain dims")
            expr: Expr = wrap(int(found.const))
            from repro.ir.expr import BinOp, Const, IterVar
            for (kind, idx), coeff in found.coeffs.items():
                if kind == ISL_IN:
                    term: Expr = IterVar(self.var_names[idx])
                elif kind == "p":
                    from repro.ir.expr import ParamRef
                    term = ParamRef(bmap.space.params[idx])
                elif kind == "d":
                    raise ScheduleError(
                        "store_in_isl: modulo layouts need the % operator"
                        " form of store_in")
                else:
                    raise ScheduleError(f"unsupported dim kind {kind}")
                if int(coeff) != 1:
                    term = BinOp("*", Const(int(coeff)), term)
                expr = BinOp("+", expr, term)
            exprs.append(expr)
        if buffer is not None:
            self.buffer = buffer
        self.store_exprs = exprs
        return self

    def get_buffer(self) -> Buffer:
        """The buffer associated with this computation (auto-created on
        first use, like the paper's C.buffer())."""
        if self.buffer is None:
            sizes = self._extent_exprs()
            self.buffer = Buffer(f"_{self.name}_b", sizes, self.dtype,
                                 ArgKind.TEMPORARY)
        return self.buffer

    def _extent_exprs(self) -> List[Expr]:
        """Per-dimension sizes of the default buffer: parameter-only upper
        bounds on each *stored* index (handles non-rectangular domains and
        permuted/contracted store_in layouts)."""
        from repro.isl.fourier_motzkin import bounds_on_dim, eliminate_dims
        store = self.store_indices()
        params = self.function.param_names
        n = len(self.var_names)
        table = {p: (PARAM, i) for i, p in enumerate(params)}
        table.update({nm: (OUT, k) for k, nm in enumerate(self.var_names)})
        store_les = []
        for e in store:
            try:
                store_les.append(expr_to_linexpr(e, table))
            except NonAffineError:
                raise TiramisuError(
                    f"{self.name}: cannot infer a buffer size for the "
                    f"non-affine store index {e!r}; pass an explicit "
                    "Buffer to store_in") from None
        sizes: List[Expr] = []
        for k, le in enumerate(store_les):
            candidates: List[Expr] = []
            for piece in self.domain.pieces:
                # Introduce the stored index as a fresh trailing dim and
                # project the domain dims away.
                aug = piece.insert_dims(OUT, n, [f"_st{k}"])
                aug = aug.add_constraint(
                    Constraint.eq(LinExpr.dim(OUT, n) - le))
                cons = eliminate_dims(aug.constraints,
                                      [(OUT, d) for d in range(n)])
                __, uppers = bounds_on_dim(cons, (OUT, n))
                piece_sizes = []
                for b, f in uppers:
                    if f.involves_kind(OUT) or f.involves_kind(IN) \
                            or f.involves_kind("d"):
                        continue
                    piece_sizes.append(_linexpr_to_expr(f, params, b, plus=1))
                if piece_sizes:
                    candidates.append(_min_expr(piece_sizes))
            if not candidates:
                raise TiramisuError(
                    f"{self.name}: cannot infer buffer extent for store "
                    f"index {store[k]!r}; call store_in with an explicit "
                    "Buffer")
            sizes.append(_max_expr(candidates))
        return sizes

    def store_indices(self) -> List[Expr]:
        """Store index expressions over the original var names."""
        if self.store_exprs is not None:
            return list(self.store_exprs)
        return [v.expr() for v in self.vars]

    # -- schedule plumbing ---------------------------------------------------

    def schedule_snapshot(self) -> Dict[str, object]:
        """Copy of this computation's schedule state (time representation,
        tags, anchor).  Scheduling commands replace ``instances`` and the
        ``rev`` expressions wholesale but mutate the ``tags`` dict and
        ``time_names`` list in place, so those are copied; the ISL sets
        and LinExprs themselves are never mutated and ride by reference.
        Feed the result to :meth:`restore_schedule` for an exact rollback
        (the primitive under :class:`repro.autosched.plan.SchedulePlan`)."""
        return {
            "time_names": list(self.time_names),
            "instances": self.instances,
            "rev": dict(self.rev),
            "tags": dict(self.tags),
            "anchor": self.anchor,
        }

    def restore_schedule(self, snapshot: Dict[str, object]) -> None:
        """Restore schedule state captured by :meth:`schedule_snapshot`."""
        self.time_names = list(snapshot["time_names"])
        self.instances = snapshot["instances"]
        self.rev = dict(snapshot["rev"])
        self.tags = dict(snapshot["tags"])
        self.anchor = snapshot["anchor"]

    def forward_schedule(self) -> Map:
        """Map: original domain -> current time dims (a relation; it is
        the inverse of ``rev`` restricted to scheduled instances)."""
        n_time = len(self.time_names)
        space = Space.map_space(tuple(self.var_names),
                                tuple(self.time_names),
                                self.name, self.name,
                                self.function.param_names)
        cons = []
        for k, nm in enumerate(self.var_names):
            cons.append(Constraint.eq(LinExpr.dim(IN, k) - self.rev[nm]))
        bm = BasicMap(space, cons)
        return Map.from_basic(bm).intersect_range(self.instances)

    def scheduled_domain(self) -> Set:
        return self.instances

    def __repr__(self):
        return f"<Computation {self.name}[{', '.join(self.var_names)}]>"


def _nm(x) -> str:
    return x.name if isinstance(x, Var) else str(x)


def _linexpr_to_expr(le, params, divisor: int = 1, plus: int = 0) -> Expr:
    """floor(le / divisor) + plus as an expression over parameters."""
    from repro.ir.expr import BinOp, Const, ParamRef
    result: Expr = Const(int(le.const))
    for (kind, idx), coeff in le.coeffs.items():
        term: Expr = ParamRef(params[idx])
        if int(coeff) != 1:
            term = BinOp("*", Const(int(coeff)), term)
        result = BinOp("+", result, term)
    if divisor != 1:
        result = BinOp("//", result, Const(divisor))
    if plus:
        result = BinOp("+", result, Const(plus))
    return result


def _min_expr(exprs: List[Expr]) -> Expr:
    from repro.ir.expr import Call
    out = exprs[0]
    for e in exprs[1:]:
        out = Call("min", [out, e])
    return out


def _max_expr(exprs: List[Expr]) -> Expr:
    from repro.ir.expr import Call
    out = exprs[0]
    for e in exprs[1:]:
        out = Call("max", [out, e])
    return out


class Input(Computation):
    """An input: a computation whose values are read from an argument
    buffer rather than computed."""

    def __init__(self, name: str, variables: Sequence[Var], dtype=T.float32,
                 fn=None):
        super().__init__(name, variables, expr=None, dtype=dtype, fn=fn)
        buf = self.get_buffer()
        buf.kind = ArgKind.INPUT
        buf.name = name


class ConstantScalar(Computation):
    """An invariant scalar computed once before the loop nests (the
    paper's `Constant`)."""

    def __init__(self, name: str, expr, dtype=T.float32, fn=None):
        unit = Var(f"_{name}_u", 0, 1)
        super().__init__(name, [unit], expr=expr, dtype=dtype, fn=fn)
        self.store_exprs = [wrap(0)]
        self.get_buffer().set_size([1])

    def ref(self):
        return self(0)


class Operation(Computation):
    """A computation that returns no value: allocation, copy, send,
    receive, barrier (paper Section III-C).  Operations are scheduled
    like any other computation."""

    def __init__(self, name: str, variables: Sequence[Var], kind: str,
                 payload: dict, fn=None):
        super().__init__(name, variables, expr=None, fn=fn)
        self.op_kind = kind
        self.payload = payload

    def __repr__(self):
        return f"<Operation {self.op_kind} {self.name}>"
