"""Polyhedral code generation: loop synthesis and Python emission."""

from .ast import Block, Loop, Stmt, loops_in, stmts_in, walk
from .isl_to_ast import generate_ast

__all__ = ["Block", "Loop", "Stmt", "loops_in", "stmts_in", "walk",
           "generate_ast"]
