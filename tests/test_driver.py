"""The staged compile driver: backend registry, uniform option
handling, per-stage profiling, and trace output."""

import io

import pytest

from repro import Computation, Function, Var
from repro.core.errors import TiramisuError
from repro.driver import (Backend, CompileReport, UnknownTargetError,
                          compile_function, emit_trace, get_backend,
                          kernel_registry, register_backend,
                          registered_targets, set_trace, trace_enabled,
                          traced)
from repro.driver.pipeline import STAGE_ORDER
from repro.driver.registry import _REGISTRY


def build_simple(name="f"):
    f = Function(name)
    with f:
        i, j = Var("i", 0, 8), Var("j", 0, 8)
        c = Computation("c", [i, j], 2.0 * i + j)
    return f, c


@pytest.fixture(autouse=True)
def _fresh_cache():
    kernel_registry.clear()
    yield
    kernel_registry.clear()


class TestBackendRegistry:
    def test_builtin_targets_registered(self):
        assert {"cpu", "c", "gpu", "distributed"} <= set(registered_targets())

    def test_get_backend_resolves(self):
        for name in ("cpu", "gpu", "distributed"):
            backend = get_backend(name)
            assert backend.name == name
            assert callable(backend.emit) and callable(backend.bind)

    def test_unknown_target_lists_registered(self):
        f, _ = build_simple()
        with pytest.raises(UnknownTargetError) as err:
            f.compile("cuda")
        msg = str(err.value)
        assert "cuda" in msg
        for name in ("cpu", "c", "gpu", "distributed"):
            assert name in msg

    def test_unknown_target_is_valueerror(self):
        # Back-compat: the old if-chain raised ValueError.
        f, _ = build_simple()
        with pytest.raises(ValueError):
            f.compile("nope")

    def test_custom_backend_roundtrip(self):
        class EchoKernel:
            pass

        @register_backend
        class EchoBackend(Backend):
            name = "echo"

            def emit(self, ctx):
                return f"// {ctx.fn.name}"

            def bind(self, ctx):
                kernel = EchoKernel()
                kernel.source = ctx.source
                return kernel

        try:
            f, _ = build_simple()
            kernel = f.compile("echo")
            assert kernel.source == "// f"
            assert kernel.report.target == "echo"
        finally:
            _REGISTRY.pop("echo", None)

    def test_register_requires_name_and_stages(self):
        class Nameless(Backend):
            def emit(self, ctx):
                return ""

            def bind(self, ctx):
                return object()

        with pytest.raises(TiramisuError):
            register_backend(Nameless)


class TestUniformOptions:
    """All four targets share the base signature and reject typos."""

    @pytest.mark.parametrize("target", ["cpu", "c", "gpu", "distributed"])
    def test_misspelled_option_raises(self, target):
        # Regression: `check_legailty=True` used to be silently swallowed
        # by every backend.  Validation runs before emit, so even the C
        # target needs no gcc here.
        f, _ = build_simple()
        with pytest.raises(TypeError) as err:
            f.compile(target, check_legailty=True)
        assert "check_legailty" in str(err.value)

    def test_unknown_options_rejected(self):
        f, _ = build_simple()
        with pytest.raises(TypeError) as err:
            compile_function(f, bogus_flag=1)
        assert "bogus_flag" in str(err.value)

    def test_check_legality_accepted_everywhere(self):
        f, _ = build_simple()
        assert compile_function(f, check_legality=True)(
        )["c"].shape == (8, 8)
        kernel_registry.clear()
        f2, _ = build_simple("f2")
        assert compile_function(f2, target="distributed",
                                check_legality=True) is not None
        # gpu needs a mapping; just check the kwarg is accepted up to
        # the backend's own validation.
        f3, c3 = build_simple("f3")
        c3.tile_gpu("i", "j", 4, 4)
        assert compile_function(f3, target="gpu",
                                check_legality=True) is not None

    def test_shim_contract(self):
        # The deprecated free functions stay as thin wrappers: they
        # warn (naming the replacement and the removal horizon), then
        # delegate to compile_function — including option validation.
        from repro.backends.cpu import compile_cpu
        from repro.backends.gpu import compile_gpu
        f, _ = build_simple()
        with pytest.warns(DeprecationWarning,
                          match=r"removed in release 2\.0.*"
                                r'Function\.compile\("cpu"\)'):
            kernel = compile_cpu(f)
        assert kernel()["c"].shape == (8, 8)
        with pytest.warns(DeprecationWarning), \
                pytest.raises(TypeError) as err:
            compile_gpu(f, bogus_flag=1)
        assert "bogus_flag" in str(err.value)

    def test_backend_specific_option_stays_scoped(self):
        # extra_flags belongs to the C backend only.
        f, _ = build_simple()
        with pytest.raises(TypeError) as err:
            f.compile("cpu", extra_flags=("-g",))
        assert "extra_flags" in str(err.value)


class TestFaultToleranceOptions:
    """The robustness options (docs/robustness.md) are validated by the
    staged driver and participate in the cache key."""

    def test_max_retries_validated(self):
        f, _ = build_simple()
        for bad in (-1, 1.5, True, "2"):
            with pytest.raises(TypeError, match="max_retries"):
                f.compile("cpu", max_retries=bad)
        assert f.compile("cpu", max_retries=0) is not None

    def test_timeout_validated(self):
        f, _ = build_simple()
        # Wrong types are TypeErrors; zero/negative are valid types
        # with an invalid value — ValueError, at normalization time.
        for bad in (True, "5s"):
            with pytest.raises(TypeError, match="timeout"):
                f.compile("cpu", timeout=bad)
        for bad in (-1, 0, 0.0, -2.5):
            with pytest.raises(ValueError, match="timeout"):
                f.compile("cpu", timeout=bad)
        assert f.compile("cpu", timeout=2.5) is not None

    def test_timeout_env_validated_at_normalization(self, monkeypatch):
        f, _ = build_simple()
        for bad in ("0", "-3", "soon"):
            monkeypatch.setenv("TIRAMISU_TIMEOUT", bad)
            with pytest.raises(ValueError, match="TIRAMISU_TIMEOUT"):
                f.compile("cpu")
        monkeypatch.setenv("TIRAMISU_TIMEOUT", "30")
        assert f.compile("cpu") is not None

    def test_on_worker_failure_validated(self):
        f, _ = build_simple()
        for bad in ("ignore", None, 1):
            with pytest.raises(TypeError, match="on_worker_failure"):
                f.compile("cpu", on_worker_failure=bad)
        for mode in ("retry", "fallback", "raise"):
            assert f.compile("cpu", on_worker_failure=mode) is not None

    def test_options_join_the_cache_key(self):
        f, _ = build_simple()
        base = f.compile("cpu")
        fingerprints = {base.report.fingerprint}
        for opts in ({"max_retries": 5}, {"timeout": 1.0},
                     {"on_worker_failure": "raise"}):
            k = f.compile("cpu", **opts)
            assert not k.report.cache_hit
            fingerprints.add(k.report.fingerprint)
        assert len(fingerprints) == 4

    def test_accepted_on_every_target(self):
        for target in ("cpu", "c", "gpu", "distributed"):
            f, _ = build_simple(f"ft_{target}")
            with pytest.raises(TypeError, match="on_worker_failure"):
                f.compile(target, on_worker_failure="bogus")


class TestCompileReport:
    def test_cold_compile_stage_order(self):
        f, _ = build_simple()
        report = f.compile("cpu").report
        assert not report.cache_hit
        # "autoschedule", "legality" and "race-check" are conditional
        # stages (plan passed / option on / parallel execution).
        expected = [s for s in STAGE_ORDER
                    if s not in ("autoschedule", "legality", "race-check")]
        assert report.stage_names() == expected
        assert report.total_seconds > 0
        assert report.source_size > 0
        assert report.fingerprint

    def test_legality_stage_recorded(self):
        f, _ = build_simple()
        report = f.compile("cpu", check_legality=True).report
        assert "legality" in report.stage_names()
        assert report.deps_checked is not None and report.deps_checked >= 0

    def test_report_counters_snapshot(self):
        f, _ = build_simple()
        f.compile("cpu")
        report = f.compile("cpu").report
        assert report.cache_hit
        assert report.cache_stats["hits"] == 1
        assert report.cache_stats["misses"] == 1

    def test_format_table_mentions_stages(self):
        f, _ = build_simple()
        report = f.compile("cpu").report
        table = report.format_table()
        assert "emit" in table and "bind" in table
        assert "cache miss" in table


class TestTrace:
    def test_env_toggle(self, monkeypatch):
        with traced(None):
            monkeypatch.delenv("TIRAMISU_TRACE", raising=False)
            assert not trace_enabled()
            monkeypatch.setenv("TIRAMISU_TRACE", "1")
            assert trace_enabled()
            monkeypatch.setenv("TIRAMISU_TRACE", "0")
            assert not trace_enabled()

    def test_forced_trace_overrides_env(self, monkeypatch):
        monkeypatch.setenv("TIRAMISU_TRACE", "0")
        with traced():
            assert trace_enabled()

    def test_emit_trace_prints_stage_table(self):
        report = CompileReport(function="f", target="cpu",
                               fingerprint="abc123")
        with traced():
            out = io.StringIO()
            emit_trace(report, stream=out)
            assert "f -> cpu" in out.getvalue()

    def test_trace_silent_when_disabled(self, monkeypatch):
        with traced(None):
            monkeypatch.delenv("TIRAMISU_TRACE", raising=False)
            out = io.StringIO()
            emit_trace(CompileReport(function="f", target="cpu"),
                       stream=out)
            assert out.getvalue() == ""

    def test_traced_restores_previous_forced_state(self):
        set_trace(False)
        try:
            with traced(True):
                assert trace_enabled()
            assert not trace_enabled()   # restored to forced-off
        finally:
            set_trace(None)


class TestCompileFunctionEntry:
    def test_compile_function_matches_method(self):
        f, _ = build_simple()
        k1 = compile_function(f, "cpu")
        k2 = f.compile("cpu")
        assert k2 is k1           # second call served by the registry
        assert k2.report.cache_hit
