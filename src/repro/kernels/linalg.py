"""Linear and tensor algebra benchmarks of Section VI-A: sgemm and
Baryon (dense tensor contraction for Baryon Building Blocks).

sgemm computes C = alpha*A*B + beta*C at the paper's 1060x1060 size; the
Tiramisu schedule applies the full optimization set the paper lists:
two-level blocking, vectorization, unrolling, array packing (modelled),
register blocking, and full/partial tile separation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.core.buffer import ArgKind

from .base import KernelBundle

PAPER_SGEMM = {"N": 1060, "M": 1060, "K": 1060}
TEST_SGEMM = {"N": 23, "M": 17, "K": 19}

PAPER_BARYON = {"T": 64}
TEST_BARYON = {"T": 7}


def build_sgemm(alpha: float = 1.5, beta: float = 0.5) -> KernelBundle:
    N, M, K = Param("N"), Param("M"), Param("K")
    f = Function("sgemm", params=[N, M, K])
    with f:
        A = Input("A", [Var("_ax", 0, N), Var("_ay", 0, K)])
        B = Input("B", [Var("_bx", 0, K), Var("_by", 0, M)])
        Cb = Buffer("C", [N, M], kind=ArgKind.INOUT)
        i2, j2 = Var("i2", 0, N), Var("j2", 0, M)
        scale = Computation("scale", [i2, j2], None)
        scale.set_expression(scale(i2, j2) * beta)
        scale.store_in(Cb, [i2, j2])
        i, j, k = Var("i", 0, N), Var("j", 0, M), Var("k", 0, K)
        acc = Computation("acc", [i, j, k], None)
        acc.set_expression(acc(i, j, k) + A(i, k) * B(k, j) * alpha)
        acc.store_in(Cb, [i, j])
        acc.after(scale, None)

    def reference(inputs, params):
        c0 = inputs["C"].astype(np.float32)
        return {"C": (alpha * (inputs["A"] @ inputs["B"])
                      + beta * c0).astype(np.float32)}

    def make_inputs(p, rng):
        return {
            "A": rng.random((p["N"], p["K"])).astype(np.float32),
            "B": rng.random((p["K"], p["M"])).astype(np.float32),
            "C": rng.random((p["N"], p["M"])).astype(np.float32),
        }

    return KernelBundle(
        name="sgemm", function=f,
        computations={"scale": scale, "acc": acc},
        make_inputs=make_inputs, reference=reference,
        paper_params=dict(PAPER_SGEMM), test_params=dict(TEST_SGEMM),
        packed_buffers=["B"])


def schedule_sgemm_cpu(bundle: KernelBundle, t1: int = 64,
                       t2: int = 8) -> None:
    """The paper's sgemm optimization set (Section VI-A): two-level
    blocking of the 3D loop, vectorization, unrolling, array packing (the
    model-level flag on B), and parallelization.  Full/partial tile
    separation happens in codegen (guarded partial tiles fall back to
    scalar code; full tiles vectorize)."""
    acc = bundle.computations["acc"]
    scale = bundle.computations["scale"]
    scale.vectorize("j2", 8)
    scale.parallelize("i2")
    # level 1: i,j -> i0 j0 i1 j1 (t1 x t1)
    acc.tile("i", "j", t1, t1, "i0", "j0", "i1", "j1")
    # move k inside the tile: i0 j0 k i1 j1
    acc.interchange("j1", "k")
    acc.interchange("i1", "k")
    # level 2: register-block the intra-tile loops (t2 x t2)
    acc.tile("i1", "j1", t2, t2, "i10", "j10", "i11", "j11")
    acc.vectorize("j11", 8)
    acc.unroll("i11", t2)
    acc.parallelize("i0")


def schedule_sgemm_pluto_like(bundle: KernelBundle) -> None:
    """What the Pluto algorithm produces: tiling + outer parallelism, no
    vectorization/unrolling/packing (Section II-a)."""
    acc = bundle.computations["acc"]
    acc.tile("i", "j", 32, 32)
    acc.parallelize("i0")


def build_baryon() -> KernelBundle:
    """Dense tensor contraction for Baryon Building Blocks [16]:

        B(t, s) = sum_{sp} w(s, sp) * sum_{c1,c2,c3} eps(c1,c2,c3)
                  * q1(t, c1, sp) * q2(t, c2, sp) * q3(t, c3, sp)

    with color indices c in 0..2 (the epsilon tensor), a source spin
    index sp contracted against a spin projection matrix w, and sink
    spin s (both 0..11).  The Tiramisu speedup over the reference comes
    from vectorization, which the reference lacks (Section VI-A)."""
    T_ = Param("T")
    S = 12
    f = Function("baryon", params=[T_])
    with f:
        q1 = Input("q1", [Var("_t1", 0, T_), Var("_c1", 0, 3),
                          Var("_s1", 0, S)])
        q2 = Input("q2", [Var("_t2", 0, T_), Var("_c2", 0, 3),
                          Var("_s2", 0, S)])
        q3 = Input("q3", [Var("_t3", 0, T_), Var("_c3", 0, 3),
                          Var("_s3", 0, S)])
        wsp = Input("wsp", [Var("_w1", 0, S), Var("_w2", 0, S)])
        t, s, sp = Var("t", 0, T_), Var("s", 0, S), Var("sp", 0, S)
        # epsilon tensor unrolled: even permutations +, odd -.
        perms = [((0, 1, 2), 1), ((1, 2, 0), 1), ((2, 0, 1), 1),
                 ((0, 2, 1), -1), ((1, 0, 2), -1), ((2, 1, 0), -1)]
        inner = None
        for (c1, c2, c3), sign in perms:
            term = (q1(t, c1, sp) * q2(t, c2, sp) * q3(t, c3, sp)
                    * float(sign))
            inner = term if inner is None else inner + term
        out_buf = Buffer("bar", [T_, S])
        zero = Computation("zero", [Var("tz", 0, T_), Var("sz", 0, S)],
                           0.0)
        zero.store_in(out_buf, [Var("tz", 0, T_), Var("sz", 0, S)])
        bar = Computation("bar_acc", [t, s, sp], None)
        bar.set_expression(bar(t, s, sp) + wsp(s, sp) * inner)
        bar.store_in(out_buf, [t, s])
        bar.after(zero, None)

    def reference(inputs, params):
        q1_, q2_, q3_ = inputs["q1"], inputs["q2"], inputs["q3"]
        eps = np.zeros((3, 3, 3), np.float32)
        for (c1, c2, c3), sign in [
                ((0, 1, 2), 1), ((1, 2, 0), 1), ((2, 0, 1), 1),
                ((0, 2, 1), -1), ((1, 0, 2), -1), ((2, 1, 0), -1)]:
            eps[c1, c2, c3] = sign
        blocks = np.einsum("abc,tap,tbp,tcp->tp", eps, q1_, q2_, q3_)
        out = np.einsum("sp,tp->ts", inputs["wsp"], blocks)
        return {"bar": out.astype(np.float32)}

    def make_inputs(p, rng):
        shape = (p["T"], 3, S)
        data = {k: rng.random(shape).astype(np.float32)
                for k in ("q1", "q2", "q3")}
        data["wsp"] = rng.random((S, S)).astype(np.float32)
        return data

    return KernelBundle(
        name="baryon", function=f,
        computations={"zero": zero, "bar": bar},
        make_inputs=make_inputs, reference=reference,
        paper_params=dict(PAPER_BARYON), test_params=dict(TEST_BARYON))


def schedule_baryon_cpu(bundle: KernelBundle) -> None:
    """Parallelize over t and vectorize the contraction lanes.

    The paper vectorizes via array expansion plus gather/scatter; with
    the (t, c, s) layout of the propagators the equivalent effect is
    lane-parallel evaluation of the spin index with the time loop spread
    over cores (the reference code is parallel but scalar)."""
    zero = bundle.computations["zero"]
    zero.vectorize("sz", 4)
    zero.parallelize("tz")
    bar = bundle.computations["bar"]
    bar.interchange("s", "sp")
    bar.vectorize("s", 4)
    bar.parallelize("t")
