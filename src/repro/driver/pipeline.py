"""The staged compile pipeline (Layer I -> callable kernel).

One explicit flow replaces the four divergent ``compile_*`` free
functions: ensure-params -> fingerprint -> [cache lookup] -> legality
-> beta-resolution -> time-space -> ast -> emit -> bind.  Every stage
is timed into the kernel's :class:`~repro.driver.trace.CompileReport`;
a cache hit returns after the fingerprint stage with the registry's
kernel.
"""

from __future__ import annotations

from typing import Dict, Optional

from .cache import CacheEntry, CompileCache, kernel_registry
from .context import CompileContext
from .fingerprint import ir_fingerprint
from .registry import Backend, get_backend
from .trace import CompileReport, emit_trace

#: Options every backend accepts, with their defaults.
BASE_OPTIONS: Dict[str, object] = {
    "check_legality": False,
    "verbose": False,
    "cache": True,
    # Multicore execution of parallel-tagged loops (cpu backend; the
    # others accept-and-record the same surface so option sets stay
    # uniform).  num_threads=None means "all cores".
    "parallel": True,
    "num_threads": None,
    # Race detector: None = auto (check parallel tags whenever this
    # compile would offload onto >= 2 workers), True = always check
    # every parallel/vector/distributed tag, False = skip.
    "check_races": None,
    # Runtime profiling: emit per-computation counters and loop-nest
    # spans into ``kernel.last_run`` (see repro.obs).  Changes the
    # emitted source, so it is part of the cache key; the default
    # (False) path is byte-identical to an unprofiled build.
    "profile": False,
    # Fault tolerance (docs/robustness.md): how many times a parallel
    # region is re-dispatched after a worker failure, the per-chunk /
    # per-recv deadline in seconds (None defers to the TIRAMISU_TIMEOUT
    # env var, then the runtime's own default), and the endgame when
    # the pool keeps dying ("fallback" degrades to sequential
    # execution, "retry" raises after the last attempt, "raise" fails
    # on the first).
    "max_retries": 2,
    "timeout": None,
    "on_worker_failure": "fallback",
}

#: The stages a full (cold) compile runs, in order ("legality" and
#: "race-check" only when their options enable them).
STAGE_ORDER = ("ensure-params", "fingerprint", "legality",
               "beta-resolution", "time-space", "ast", "race-check",
               "emit", "bind")


class CompilePipeline:
    """Runs the named compile stages for one backend."""

    def __init__(self, backend: Backend,
                 cache: Optional[CompileCache] = None):
        self.backend = backend
        self.cache = kernel_registry if cache is None else cache

    # -- option handling --------------------------------------------------

    def normalize_options(self, opts: Dict[str, object]
                          ) -> Dict[str, object]:
        """Fill defaults; reject unknown options loudly (a typo like
        ``check_legailty=True`` must never be silently ignored)."""
        allowed = dict(BASE_OPTIONS)
        allowed.update(self.backend.extra_options)
        for key in opts:
            if key not in allowed:
                raise TypeError(
                    f"compile() got an unexpected option {key!r} for "
                    f"target {self.backend.name!r}; valid options: "
                    f"{', '.join(sorted(allowed))}")
        merged = dict(allowed)
        merged.update(opts)
        nt = merged.get("num_threads")
        if nt is not None and (not isinstance(nt, int)
                               or isinstance(nt, bool) or nt < 1):
            raise TypeError(
                f"num_threads must be a positive int or None, got {nt!r}")
        prof = merged.get("profile")
        if not isinstance(prof, bool):
            raise TypeError(
                f"profile must be True or False, got {prof!r}")
        mr = merged.get("max_retries")
        if not isinstance(mr, int) or isinstance(mr, bool) or mr < 0:
            raise TypeError(
                f"max_retries must be a non-negative int, got {mr!r}")
        to = merged.get("timeout")
        if to is not None and (isinstance(to, bool)
                               or not isinstance(to, (int, float))
                               or to <= 0):
            raise TypeError(
                f"timeout must be a positive number or None, got {to!r}")
        owf = merged.get("on_worker_failure")
        if owf not in ("retry", "fallback", "raise"):
            raise TypeError(
                f"on_worker_failure must be 'retry', 'fallback' or "
                f"'raise', got {owf!r}")
        return merged

    # -- stages -----------------------------------------------------------

    def _ensure_params(self, ctx: CompileContext) -> None:
        """Materialize everything the fingerprint must see: argument
        kinds, auto-created buffers, parameters pulled from bounds.
        Idempotent, so repeated compiles fingerprint identically."""
        from repro.backends.common import infer_argument_kinds
        infer_argument_kinds(ctx.fn)

    def _cache_lookup(self, ctx: CompileContext):
        """Return the registry's kernel for this fingerprint, or None.

        An entry whose originating function was mutated *after* being
        stored (content drift — in-place scheduling of a still-cached
        function) no longer matches its own key; detect that by
        re-fingerprinting the entry's function and drop the entry."""
        entry = self.cache.get(ctx.fingerprint)
        if entry is None:
            return None
        if entry.fn is not ctx.fn:
            current = ir_fingerprint(entry.fn, self.backend.name,
                                     self._key_options(ctx.options))
            if current != ctx.fingerprint:
                self.cache.discard(ctx.fingerprint)
                return None
        self.cache.record_hit()
        return entry

    def _key_options(self, options: Dict[str, object]) -> Dict[str, object]:
        """The options that affect generated code (and hence the cache
        key).  ``verbose`` and ``cache`` are driver behavior, not
        content."""
        return {k: v for k, v in options.items()
                if k not in ("verbose", "cache")}

    def _race_check_kinds(self, ctx: CompileContext):
        """Which tag kinds the race detector verifies for this compile,
        or None to skip the stage.

        ``check_races=True`` is strict — every parallel/vector/
        distributed tag, on any backend.  The default (None, "auto")
        guards exactly the compiles that will run loop iterations
        concurrently: a parallel-execution backend, parallelism not
        disabled, and >= 2 resolved workers.  Vector tags are exempt in
        auto mode because the Python emitter already falls back to
        scalar code when lanes carry a dependence."""
        opt = ctx.options.get("check_races")
        if opt is False:
            return None
        if opt:
            from repro.core.deps import RACE_CHECKED_TAGS
            return RACE_CHECKED_TAGS
        if not ctx.options.get("parallel", True):
            return None
        if not getattr(self.backend, "parallel_execution", False):
            return None
        from repro.backends.parallel import resolve_num_threads
        if resolve_num_threads(ctx.options.get("num_threads")) < 2:
            return None
        has_parallel = any(
            tag.kind == "parallel"
            for comp in ctx.fn.active_computations()
            for tag in getattr(comp, "tags", {}).values())
        return ("parallel",) if has_parallel else None

    # -- driver -----------------------------------------------------------

    def run(self, fn, **opts):
        """Compile ``fn`` through the staged pipeline; returns a kernel
        with a ``report`` attribute."""
        options = self.normalize_options(opts)
        report = CompileReport(function=fn.name, target=self.backend.name)
        ctx = CompileContext(fn=fn, target=self.backend.name,
                             options=options, backend=self.backend,
                             report=report)

        with report.timed("ensure-params"):
            self._ensure_params(ctx)
        with report.timed("fingerprint"):
            ctx.fingerprint = ir_fingerprint(
                fn, self.backend.name, self._key_options(options))
        report.fingerprint = ctx.fingerprint

        use_cache = bool(options["cache"])
        if use_cache:
            entry = self._cache_lookup(ctx)
            if entry is not None:
                report.cache_hit = True
                report.source_size = len(entry.source)
                if options["verbose"]:
                    print(entry.source)
                return self._finish(ctx, entry.kernel)

        if options["check_legality"]:
            from repro.core.deps import check_schedule_legality
            with report.timed("legality"):
                report.deps_checked = check_schedule_legality(fn)

        from repro.codegen.isl_to_ast import build_ast, collect_items
        with report.timed("beta-resolution"):
            ctx.beta = fn.resolve_order()
        with report.timed("time-space"):
            ctx.items = collect_items(fn, ctx.beta)
        with report.timed("ast"):
            ctx.ast = build_ast(ctx.items)

        race_kinds = self._race_check_kinds(ctx)
        if race_kinds is not None:
            from repro.core.deps import check_parallel_legality
            with report.timed("race-check"):
                report.races_checked = check_parallel_legality(
                    fn, kinds=race_kinds)

        with report.timed("emit"):
            ctx.source = self.backend.emit(ctx)
        report.source_size = len(ctx.source)
        if options["verbose"]:
            print(ctx.source)

        with report.timed("bind"):
            ctx.kernel = self.backend.bind(ctx)

        if use_cache:
            self.cache.record_miss()
            self.cache.put(CacheEntry(key=ctx.fingerprint, fn=fn,
                                      target=self.backend.name,
                                      source=ctx.source,
                                      kernel=ctx.kernel))
        return self._finish(ctx, ctx.kernel)

    def _finish(self, ctx: CompileContext, kernel):
        # Point-in-time copy: later compiles must not mutate the stats
        # an already-issued report carries.
        ctx.report.cache_stats = dict(self.cache.stats())
        from repro.isl.cache import stats as isl_cache_stats
        ctx.report.isl_cache_stats = isl_cache_stats()
        ctx.report.parallel_regions = getattr(kernel, "parallel_regions", 0)
        runtime = getattr(kernel, "runtime", None)
        if runtime is not None:
            ctx.report.parallel_workers = runtime.num_threads
        kernel.report = ctx.report
        emit_trace(ctx.report)
        from repro.obs.tracer import get_tracer
        tracer = get_tracer()
        if tracer.enabled():
            tracer.record_compile(ctx.report)
        return kernel


def compile_function(fn, target: str = "cpu", **opts):
    """The unified compile entry point behind ``Function.compile``."""
    return CompilePipeline(get_backend(target)).run(fn, **opts)
