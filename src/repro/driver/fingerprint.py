"""Content addressing for compiled kernels.

:func:`ir_fingerprint` folds everything that determines the generated
code — the function's computations (domains, expressions, schedules,
tags), the static beta order, the data layout (Layer III buffers and
store maps), the target, and the compile options — into one stable
SHA-256 digest.  Two functions with the same fingerprint compile to the
same kernel, so the digest is the key of the driver's compile cache;
any scheduling command (``tile``, ``vectorize``, ``store_in``, ...)
changes the digest and invalidates the entry.

The IR's reprs are structural (expressions, linear forms and ISL sets
print their contents, never object identities), which is what makes the
digest stable across separately-built but identical functions.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Optional


def _stable(obj) -> str:
    """A deterministic, structure-only string for fingerprint tokens."""
    from repro.core.buffer import Buffer
    from repro.core.computation import Computation

    if isinstance(obj, Buffer):
        sizes = ",".join(repr(s) for s in obj.sizes)
        return (f"buf<{obj.name}|[{sizes}]|{obj.dtype!r}|{obj.kind.value}"
                f"|{obj.mem_space.value}>")
    if isinstance(obj, Computation):
        return f"comp-ref<{obj.name}>"
    if isinstance(obj, dict):
        items = ",".join(f"{_stable(k)}:{_stable(v)}"
                         for k, v in sorted(obj.items(), key=lambda kv:
                                            repr(kv[0])))
        return f"{{{items}}}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_stable(v) for v in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_stable(v) for v in obj)) + "}"
    return repr(obj)


def _computation_tokens(comp) -> Iterator[str]:
    from repro.core.computation import Operation

    yield f"comp:{type(comp).__name__}:{comp.name}"
    yield f"vars:{','.join(comp.var_names)}"
    yield f"domain:{comp.domain!r}"
    yield f"expr:{comp.expr!r}"
    yield f"predicate:{comp.predicate!r}"
    yield f"dtype:{comp.dtype!r}"
    yield f"inlined:{comp.inlined}"
    # -- Layer II: the affine schedule ---------------------------------
    yield f"time:{','.join(comp.time_names)}"
    yield "rev:" + _stable({nm: repr(le) for nm, le in comp.rev.items()})
    yield f"instances:{comp.instances!r}"
    yield "tags:" + _stable({lvl: repr(tag)
                             for lvl, tag in sorted(comp.tags.items())})
    if comp.anchor is not None:
        anchor_comp, anchor_level = comp.anchor
        yield f"anchor:{anchor_comp.name}@{anchor_level}"
    # -- Layer III: the data layout ------------------------------------
    if isinstance(comp, Operation):
        # Operations have no value/store of their own; their buffers
        # live in the payload.
        yield f"op:{comp.op_kind}"
        yield "payload:" + _stable(comp.payload)
    else:
        yield "store:" + _stable([repr(e) for e in comp.store_indices()])
        yield "buffer:" + _stable(comp.get_buffer())
        if comp.cached_reads:
            yield "cached_reads:" + _stable(comp.cached_reads)
        if comp.cached_store is not None:
            yield "cached_store:" + _stable(comp.cached_store)


def ir_fingerprint(fn, target: str = "",
                   options: Optional[Dict[str, object]] = None) -> str:
    """Stable hash of a function's IR + schedule + target + options."""
    h = hashlib.sha256()

    def feed(token: str) -> None:
        h.update(token.encode())
        h.update(b"\x00")

    feed(f"fn:{fn.name}")
    feed("params:" + ",".join(fn.param_names))
    for kind, a, b, level in fn.order_directives:
        feed(f"order:{kind}:{a.name}:{b.name}:{level}")
    for comp in fn.computations:
        for token in _computation_tokens(comp):
            feed(token)
    feed(f"target:{target}")
    for key, value in sorted((options or {}).items()):
        feed(f"opt:{key}={_stable(value)}")
    return h.hexdigest()
