"""Trace-driven cache simulation: unit tests for the hierarchy, and
validation that the locality effects the paper's schedules claim —
tiling, fusion, compute_at — show up in *measured* misses on the actual
generated loop nests (cross-checking the analytical model)."""

import numpy as np
import pytest

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.core.buffer import ArgKind
from repro.machine import SetAssociativeCache, simulate_trace


class TestCacheUnit:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, line_bytes=64, ways=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(32)          # same line
        assert not c.access(64)      # next line

    def test_lru_eviction(self):
        c = SetAssociativeCache(128, line_bytes=64, ways=1)  # 2 sets
        assert not c.access(0)       # set 0
        assert not c.access(128)     # set 0 again -> evicts line 0
        assert not c.access(0)       # miss: was evicted
        assert c.misses == 3

    def test_associativity_prevents_conflict(self):
        direct = SetAssociativeCache(128, line_bytes=64, ways=1)
        assoc = SetAssociativeCache(128, line_bytes=64, ways=2)
        for cache in (direct, assoc):
            for __ in range(4):
                cache.access(0)
                cache.access(128)    # conflicts in the direct case
        assert assoc.misses < direct.misses

    def test_miss_ratio(self):
        c = SetAssociativeCache(4096)
        for addr in range(0, 640, 4):  # 10 lines, 160 accesses
            c.access(addr)
        assert c.misses == 10
        assert c.miss_ratio == pytest.approx(10 / 160)


def make_sgemm():
    N, M, K = Param("N"), Param("M"), Param("K")
    f = Function("s", params=[N, M, K])
    with f:
        A = Input("A", [Var("x", 0, N), Var("y", 0, K)])
        B = Input("B", [Var("x2", 0, K), Var("y2", 0, M)])
        Cb = Buffer("C", [N, M], kind=ArgKind.INOUT)
        i, j, k = Var("i", 0, N), Var("j", 0, M), Var("k", 0, K)
        acc = Computation("acc", [i, j, k], None)
        acc.set_expression(acc(i, j, k) + A(i, k) * B(k, j))
        acc.store_in(Cb, [i, j])
    return f, acc


STRESS = dict(l1_bytes=2048, l2_bytes=16384)
P96 = {"N": 96, "M": 96, "K": 96}


class TestScheduleLocalityMeasured:
    def test_tiling_cuts_l1_misses(self):
        f1, __ = make_sgemm()
        naive = simulate_trace(f1, P96, **STRESS)
        f2, acc = make_sgemm()
        acc.tile("i", "j", 8, 8)
        acc.interchange("j1", "k")
        acc.interchange("i1", "k")
        tiled = simulate_trace(f2, P96, **STRESS)
        assert tiled.l1_miss_ratio < naive.l1_miss_ratio / 3
        assert tiled.memory_cycles() < naive.memory_cycles()

    def test_interchange_changes_locality(self):
        """k-innermost walks B column-wise (bad); j-innermost streams."""
        f1, a1 = make_sgemm()                   # i j k: k inner
        bad = simulate_trace(f1, P96, **STRESS)
        f2, a2 = make_sgemm()
        a2.interchange("j", "k")                # i k j: j inner
        good = simulate_trace(f2, P96, **STRESS)
        assert good.l1_miss_ratio < bad.l1_miss_ratio

    def test_fusion_cuts_misses(self):
        def build(fused):
            n = 128
            f = Function("nb" + str(fused))
            with f:
                inp = Input("inp", [Var("x", 0, n), Var("y", 0, n)])
                buf = Buffer("out", [n, n], kind=ArgKind.OUTPUT)
                i1, j1 = Var("i1", 0, n), Var("j1", 0, n)
                s0 = Computation("s0", [i1, j1], None)
                s0.set_expression(inp(i1, j1) * 2.0)
                s0.store_in(buf, [i1, j1])
                i2, j2 = Var("i2", 0, n), Var("j2", 0, n)
                s1 = Computation("s1", [i2, j2], None)
                s1.set_expression(s0(i2, j2) + 1.0)
                s1.store_in(buf, [i2, j2])
            s1.after(s0, "j1" if fused else None)
            return f
        fused = simulate_trace(build(True), {}, **STRESS)
        unfused = simulate_trace(build(False), {}, **STRESS)
        assert fused.l1_miss_ratio < unfused.l1_miss_ratio

    def test_compute_at_improves_producer_locality(self):
        def build(at):
            n = 256
            f = Function("ca" + str(at))
            with f:
                inp = Input("inp", [Var("x", 0, n + 2)])
                iw = Var("iw", 0, n + 2)
                i = Var("i", 0, n)
                a = Computation("a", [iw], None)
                a.set_expression(inp(iw) * 2.0)
                b = Computation("b", [i], None)
                b.set_expression(a(i) + a(i + 2))
            b.split("i", 8, "i0", "i1")
            if at:
                a.compute_at(b, "i0")
            return f
        nested = simulate_trace(build(True), {}, l1_bytes=256,
                                l2_bytes=2048)
        separate = simulate_trace(build(False), {}, l1_bytes=256,
                                  l2_bytes=2048)
        assert nested.l1_miss_ratio <= separate.l1_miss_ratio

    def test_trace_respects_guards(self):
        """Triangular domains only touch the triangle."""
        f = Function("tri")
        with f:
            i = Var("i", 0, 16)
            j = Var("j", 0, i + 1)
            c = Computation("c", [i, j], 1.0)
        stats = simulate_trace(f, {})
        assert stats.total_accesses == 16 * 17 // 2

    def test_access_budget_respected(self):
        f1, __ = make_sgemm()
        stats = simulate_trace(f1, P96, max_accesses=1000)
        assert stats.total_accesses <= 1004
