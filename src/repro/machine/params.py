"""Machine descriptions for the analytical performance models.

Defaults approximate the paper's evaluation platforms (Section VI):
dual-socket 24-core Intel Xeon E5-2680v3 nodes with an Infiniband
interconnect, and an NVIDIA Tesla K40.  Absolute numbers are not the
goal (DESIGN.md); the relations between them — vector width, core count,
cache versus memory latency, PCIe versus on-device bandwidth — drive the
figure shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CpuMachine:
    """One multicore node (E5-2680v3-like)."""

    name: str = "xeon-e5-2680v3"
    cores: int = 24
    frequency_ghz: float = 2.5
    vector_width_f32: int = 8          # AVX2
    flops_per_cycle_scalar: float = 4.0   # 2 FMA ports
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 30 * 1024 * 1024
    l1_latency_cycles: float = 4.0
    l2_latency_cycles: float = 12.0
    mem_latency_cycles: float = 200.0
    mem_bandwidth_gbs: float = 60.0
    parallel_efficiency: float = 0.88
    branch_cycles: float = 1.5
    loop_overhead_cycles: float = 1.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class GpuMachine:
    """An NVIDIA K40-class accelerator."""

    name: str = "tesla-k40"
    sms: int = 15
    cuda_cores: int = 2880
    frequency_ghz: float = 0.745
    global_bandwidth_gbs: float = 288.0
    shared_latency_cycles: float = 6.0
    global_latency_cycles: float = 400.0
    constant_latency_cycles: float = 8.0   # broadcast through const cache
    warp_size: int = 32
    pcie_bandwidth_gbs: float = 12.0
    pcie_latency_us: float = 10.0
    kernel_launch_us: float = 8.0
    coalescing_factor: float = 16.0        # waste for fully strided access
    divergence_penalty: float = 1.8

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class Network:
    """An Infiniband-style interconnect (MVAPICH2 in the paper)."""

    name: str = "infiniband-fdr"
    latency_us: float = 1.5
    bandwidth_gbs: float = 6.0
    pack_ns_per_byte: float = 0.25   # cost of packing non-contiguous data


@dataclass(frozen=True)
class Cluster:
    node: CpuMachine = field(default_factory=CpuMachine)
    network: Network = field(default_factory=Network)
    nodes: int = 16


DEFAULT_CPU = CpuMachine()
DEFAULT_GPU = GpuMachine()
DEFAULT_NETWORK = Network()
DEFAULT_CLUSTER = Cluster()
