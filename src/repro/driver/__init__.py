"""The staged compiler driver (the paper's single codegen entry point).

`tiramisu::function` drives lowering through the four IR layers behind
one call; this package reproduces that shape for the Python
reproduction.  A :class:`CompilePipeline` runs explicit named stages
(ensure-params -> legality -> beta-resolution -> time-space -> ast ->
emit -> bind) over a :class:`CompileContext`, resolves targets through
the :class:`Backend` registry, skips straight to a cached kernel when
the function's :func:`ir_fingerprint` is unchanged, and attaches a
per-stage :class:`CompileReport` to every kernel (``TIRAMISU_TRACE=1``
prints the stage table).
"""

from .cache import CacheEntry, CompileCache, kernel_registry
from .context import CompileContext
from .fingerprint import ir_fingerprint
from .pipeline import BASE_OPTIONS, CompilePipeline, compile_function
from .registry import (Backend, UnknownTargetError, get_backend,
                       register_backend, registered_targets)
from .trace import (CompileReport, StageTiming, emit_trace, set_trace,
                    trace_enabled, traced)

__all__ = [
    "BASE_OPTIONS",
    "Backend",
    "CacheEntry",
    "CompileCache",
    "CompileContext",
    "CompilePipeline",
    "CompileReport",
    "StageTiming",
    "UnknownTargetError",
    "compile_function",
    "emit_trace",
    "get_backend",
    "ir_fingerprint",
    "kernel_registry",
    "register_backend",
    "registered_targets",
    "set_trace",
    "trace_enabled",
    "traced",
]
