"""The vendor-library stand-ins: executable kernels and modeled times."""

import numpy as np
import pytest

from repro.linalg_lib import (CUBLAS_SGEMM_EFFICIENCY,
                              MKL_SGEMM_EFFICIENCY, conv2d_nchw,
                              cublas_sgemm_time, mkl_conv_time,
                              mkl_sgemm_time, mkl_vgg_time, sgemm)


class TestExecutableKernels:
    def test_sgemm_contract(self):
        rng = np.random.default_rng(0)
        a = rng.random((6, 5)).astype(np.float32)
        b = rng.random((5, 7)).astype(np.float32)
        c = rng.random((6, 7)).astype(np.float32)
        c0 = c.copy()
        out = sgemm(2.0, a, b, 0.5, c)
        assert out is c                       # in place
        assert np.allclose(c, 2.0 * (a @ b) + 0.5 * c0, atol=1e-5)

    def test_conv2d_nchw_matches_direct(self):
        rng = np.random.default_rng(1)
        img = rng.random((2, 3, 9, 8)).astype(np.float32)
        w = rng.random((4, 3, 3, 3)).astype(np.float32)
        bias = rng.random(4).astype(np.float32)
        out = conv2d_nchw(img, w, bias)
        assert out.shape == (2, 4, 7, 6)
        # spot-check one output element directly
        b_, fo, y, x = 1, 2, 3, 4
        direct = bias[fo]
        for fi in range(3):
            for ky in range(3):
                for kx in range(3):
                    direct += img[b_, fi, y + ky, x + kx] * w[fo, fi, ky, kx]
        assert np.isclose(out[b_, fo, y, x], direct, atol=1e-4)


class TestModeledTimes:
    def test_sgemm_time_scales_cubically(self):
        t1 = mkl_sgemm_time(100, 100, 100)
        t2 = mkl_sgemm_time(200, 200, 200)
        assert t2 == pytest.approx(8 * t1)

    def test_efficiencies_are_fractions(self):
        assert 0 < MKL_SGEMM_EFFICIENCY < 1
        assert 0 < CUBLAS_SGEMM_EFFICIENCY < 1

    def test_generic_conv_slower_per_flop_than_sgemm(self):
        """The specialization argument: MKL's generic convolution runs at
        a lower fraction of peak than its gemm."""
        flops_conv = 2.0 * 2 * 3 * 3 * 64 * 64 * 9
        t_conv = mkl_conv_time(2, 3, 3, 64, 64)
        rate_conv = flops_conv / t_conv
        flops_gemm = 2.0 * 128 ** 3
        rate_gemm = flops_gemm / mkl_sgemm_time(128, 128, 128)
        assert rate_conv < rate_gemm

    def test_vgg_time_counts_two_convs(self):
        assert mkl_vgg_time(2, 8, 64, 64) > mkl_conv_time(2, 8, 8, 64, 64)

    def test_cublas_includes_transfers(self):
        tiny = cublas_sgemm_time(8, 8, 8)
        # latency floor: two PCIe latencies minimum
        assert tiny > 2 * 10e-6
