"""The Tiramisu function: a pipeline of computations plus its schedule.

A :class:`Function` collects computations, ordering directives, and
buffer arguments, resolves the static (β) ordering dimensions, and hands
the result to a backend for code generation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.expr import Expr, ParamRef

from .buffer import ArgKind, Buffer
from .errors import ScheduleError, TiramisuError
from .var import Param

_function_stack: List["Function"] = []


def current_function() -> Optional["Function"]:
    return _function_stack[-1] if _function_stack else None


class Function:
    """A named pipeline (the paper's `tiramisu::function`)."""

    def __init__(self, name: str, params: Sequence[Param] = ()):
        self.name = name
        self.params: List[Param] = list(params)
        self.computations: List = []
        self.order_directives: List[Tuple[str, object, object, int]] = []
        self._beta: Optional[Dict[str, List[Fraction]]] = None

    # -- registration -----------------------------------------------------

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def add_param(self, param: Param) -> None:
        if param.name not in self.param_names:
            self.params.append(param)

    def ensure_params_from(self, expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, ParamRef):
                if node.name not in self.param_names:
                    self.params.append(Param(node.name))

    def _register(self, comp) -> None:
        if any(c.name == comp.name for c in self.computations):
            raise TiramisuError(
                f"duplicate computation name {comp.name!r} in {self.name}")
        for v in comp.vars:
            if v.lo is not None:
                self.ensure_params_from(v.lo)
            if v.hi is not None:
                self.ensure_params_from(v.hi)
        self.computations.append(comp)
        self._beta = None

    def _register_clone(self, comp) -> None:
        """Register a computation created by a pass (e.g. separation)
        without rebuilding its domain."""
        if any(c.name == comp.name for c in self.computations):
            raise TiramisuError(
                f"duplicate computation name {comp.name!r} in {self.name}")
        self.computations.append(comp)
        self._beta = None

    def find(self, name: str):
        for c in self.computations:
            if c.name == name:
                return c
        raise KeyError(name)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Function":
        _function_stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _function_stack.pop()

    # -- ordering -----------------------------------------------------------

    def order_after(self, a, b, level: int) -> None:
        """a executes after b; they share loop levels 0..level."""
        self.order_directives.append(("after", a, b, level))
        self._beta = None

    def order_before(self, a, b, level: int) -> None:
        self.order_directives.append(("before", a, b, level))
        self._beta = None

    def sequence(self, *comps) -> None:
        """Order the given computations sequentially at the root level."""
        for prev, nxt in zip(comps, comps[1:]):
            self.order_after(nxt, prev, -1)

    def active_computations(self) -> List:
        return [c for c in self.computations if not c.inlined]

    # -- schedule snapshot / restore ---------------------------------------

    def schedule_snapshot(self) -> Dict[str, object]:
        """Copy of the function-level schedule state: the ordering
        directives plus every computation's time representation.  Pure
        schedule transformations (tile/interchange/fuse/tags) are exactly
        what this covers; commands that create computations (``separate``)
        or rebind buffers are outside its scope."""
        return {
            "order_directives": list(self.order_directives),
            "computations": {c.name: c.schedule_snapshot()
                             for c in self.computations},
        }

    def restore_schedule(self, snapshot: Dict[str, object]) -> None:
        """Restore state captured by :meth:`schedule_snapshot` and
        invalidate the cached β resolution."""
        self.order_directives = list(snapshot["order_directives"])
        saved = snapshot["computations"]
        for c in self.computations:
            snap = saved.get(c.name)
            if snap is not None:
                c.restore_schedule(snap)
        self._beta = None

    def max_depth(self) -> int:
        comps = self.active_computations()
        return max((len(c.time_names) for c in comps), default=0)

    def resolve_order(self) -> Dict[str, List[int]]:
        """Compute the static (β) ordering vector for each computation.

        β has length max_depth + 1; entry k orders computations that
        share loop levels 0..k-1, just before dynamic dim k.  Directives
        are applied in program order; the result is canonicalised to
        small consecutive integers.
        """
        comps = self.active_computations()
        depth = self.max_depth()
        eps = Fraction(1, 1 << 20)
        beta: Dict[str, List[Fraction]] = {}
        for idx, c in enumerate(comps):
            beta[c.name] = [Fraction(idx)] + [Fraction(0)] * depth
        counter = 0
        for kind, a, b, level in self.order_directives:
            if a.inlined or b.inlined:
                continue
            counter += 1
            delta = eps * counter if kind == "after" else -eps * counter
            vec = list(beta[b.name])
            new = vec[:level + 2]  # copy the shared prefix 0..level
            new[level + 1] = vec[level + 1] + delta
            new += [Fraction(0)] * (depth - len(new) + 1)
            beta[a.name] = new
        return self._canonicalize_beta(beta, depth)

    @staticmethod
    def _canonicalize_beta(beta: Dict[str, List[Fraction]], depth: int
                           ) -> Dict[str, List[int]]:
        names = list(beta)
        result: Dict[str, List[int]] = {nm: [0] * (depth + 1)
                                        for nm in names}
        def recurse(group: List[str], level: int) -> None:
            if level > depth:
                return
            values = sorted({beta[nm][level] for nm in group})
            rank = {v: i for i, v in enumerate(values)}
            buckets: Dict[int, List[str]] = {}
            for nm in group:
                r = rank[beta[nm][level]]
                result[nm][level] = r
                buckets.setdefault(r, []).append(nm)
            for members in buckets.values():
                recurse(members, level + 1)
        recurse(names, 0)
        return result

    # -- compilation ----------------------------------------------------------

    def lower(self):
        """Produce the backend-independent AST (Layer IV -> AST)."""
        from repro.codegen.isl_to_ast import generate_ast
        return generate_ast(self)

    def compile(self, target: str = "cpu", **opts):
        """Generate executable code for the given backend.

        Targets resolve through the backend registry
        (:mod:`repro.driver.registry`) and compilation runs the staged
        pipeline (:mod:`repro.driver.pipeline`): repeated calls on an
        unchanged function return the cached kernel, and every kernel
        carries a per-stage ``report`` (see docs/compiler_driver.md).
        Unknown options raise ``TypeError`` naming the offending kwarg.
        """
        from repro.driver import compile_function
        return compile_function(self, target=target, **opts)

    def dump_ir(self) -> str:
        """Textual dump of the four IR layers (paper Section IV)."""
        from .dump import dump_ir
        return dump_ir(self)

    def check_legality(self) -> int:
        """Verify the current schedule preserves all dependences; returns
        the number of dependences checked."""
        from .deps import check_schedule_legality
        return check_schedule_legality(self)

    def ir_fingerprint(self, target: str = "", options=None) -> str:
        """Stable content hash of this function's IR + schedule + layout
        (the compile cache key; see :mod:`repro.driver.fingerprint`)."""
        from repro.driver import ir_fingerprint
        return ir_fingerprint(self, target, options)

    def arguments(self) -> List[Buffer]:
        """Input/output buffers, in declaration order."""
        seen: List[Buffer] = []
        for c in self.computations:
            buf = c.get_buffer()
            if buf not in seen and buf.kind != ArgKind.TEMPORARY:
                seen.append(buf)
        return seen

    def __repr__(self):
        return (f"<Function {self.name}: "
                f"{[c.name for c in self.computations]}>")
