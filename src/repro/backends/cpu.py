"""The multicore CPU backend: Layer IV -> Python/NumPy source -> kernel.

This plays the role of the paper's LLVM backend (reached through Halide
lowering in the original system): the polyhedral AST is emitted as
executable code.  Loops tagged ``vector`` become NumPy array arithmetic;
loops tagged ``parallel`` are annotated (execution is sequential — the
timing effect of parallelism is captured by
:mod:`repro.machine.cpu_model`, as documented in DESIGN.md).
"""

from __future__ import annotations

import textwrap
from typing import Dict, List, Optional

import numpy as np

from repro.codegen.pyemit import _PRELUDE, Emitter, _buf_var
from repro.core.buffer import ArgKind, Buffer
from repro.core.computation import Input, Operation
from repro.core.errors import ExecutionError
from repro.core.function import Function
from repro.driver.registry import Backend, register_backend

from .evalexpr import eval_const_expr


def infer_argument_kinds(fn: Function) -> None:
    """Mark buffers: inputs keep INPUT; computations nobody consumes
    become OUTPUT arguments (named after the computation)."""
    from repro.ir.expr import accesses_in
    consumed = set()
    consumed_buffers = set()
    for c in fn.computations:
        if isinstance(c, Operation):
            src = c.payload.get("src")
            if src is not None:
                consumed_buffers.add(id(src))
            continue
        if c.expr is None:
            continue
        for acc in accesses_in(c.expr):
            producer = acc.computation
            if producer is c:
                continue
            if producer.get_buffer() is c.get_buffer():
                # Same-buffer access (reduction clones, separated
                # partial tiles): not a real consumption.
                continue
            consumed.add(producer.name)
    for c in fn.active_computations():
        if isinstance(c, (Input, Operation)):
            continue
        buf = c.get_buffer()
        if c.name not in consumed and id(buf) not in consumed_buffers \
                and buf.kind == ArgKind.TEMPORARY:
            buf.kind = ArgKind.OUTPUT
            if buf.name == f"_{c.name}_b":
                buf.name = c.name


def collect_buffers(fn: Function) -> List[Buffer]:
    seen: Dict[int, Buffer] = {}
    order: List[Buffer] = []
    for c in fn.computations:
        if isinstance(c, Operation):
            for key in ("buffer", "src", "dst"):
                b = c.payload.get(key)
                if isinstance(b, Buffer) and id(b) not in seen:
                    seen[id(b)] = b
                    order.append(b)
            continue
        if c.inlined:
            continue
        candidates = [c.get_buffer()]
        for shared, *_ in c.cached_reads.values():
            candidates.append(shared)
        if c.cached_store is not None:
            candidates.append(c.cached_store[0])
        for b in candidates:
            if id(b) not in seen:
                seen[id(b)] = b
                order.append(b)
    return order


class CompiledKernel:
    """A callable compiled Tiramisu function."""

    def __init__(self, fn: Function, source: str, pyfunc, buffers,
                 param_names):
        self.fn = fn
        self.source = source
        self._pyfunc = pyfunc
        self.buffers = buffers
        self.param_names = list(param_names)

    def argument_names(self) -> List[str]:
        return [b.name for b in self.buffers
                if b.kind != ArgKind.TEMPORARY] + self.param_names

    def __call__(self, _runtime=None, **kwargs):
        params = {}
        for p in self.param_names:
            if p not in kwargs:
                raise ExecutionError(f"missing parameter {p!r}")
            params[p] = int(kwargs.pop(p))
        arrays: Dict[str, np.ndarray] = {}
        outputs: Dict[str, np.ndarray] = {}
        for buf in self.buffers:
            if buf.kind == ArgKind.INPUT:
                if buf.name not in kwargs:
                    raise ExecutionError(f"missing input buffer {buf.name!r}")
                arrays[buf.name] = np.asarray(kwargs.pop(buf.name))
            elif buf.kind == ArgKind.INOUT:
                if buf.name not in kwargs:
                    raise ExecutionError(f"missing inout buffer {buf.name!r}")
                arrays[buf.name] = np.asarray(kwargs.pop(buf.name))
                outputs[buf.name] = arrays[buf.name]
            elif buf.kind == ArgKind.OUTPUT:
                arr = kwargs.pop(buf.name, None)
                if arr is None:
                    arr = buf.allocate(params)
                arrays[buf.name] = arr
                outputs[buf.name] = arr
            else:
                arrays[buf.name] = buf.allocate(params)
        if kwargs:
            raise ExecutionError(f"unknown arguments: {sorted(kwargs)}")
        self._pyfunc(arrays, params, _runtime)
        return outputs


def emit_source(fn: Function, emitter_cls=Emitter, ast=None) -> str:
    """Emit the Python/NumPy kernel source.  ``ast`` is the staged
    driver's pre-lowered AST; without it the function lowers itself."""
    if ast is None:
        infer_argument_kinds(fn)
        ast = fn.lower()
    emitter = emitter_cls(fn, fn.param_names)
    emitter.line(f"def _kernel(_bufs, _params, _runtime=None):")
    emitter.indent += 1
    for p in fn.param_names:
        emitter.line(f"{p} = _params[{p!r}]")
    for buf in collect_buffers(fn):
        emitter.line(f"{_buf_var(buf)} = _bufs[{buf.name!r}]")
    emitter.emit_block(ast)
    emitter.indent -= 1
    return _PRELUDE + "\n" + emitter.buf.getvalue()


def _bind_python_kernel(fn: Function, source: str, tag: str):
    """exec() the emitted source and return its kernel entry point."""
    namespace: Dict[str, object] = {}
    code = compile(source, f"<{tag}:{fn.name}>", "exec")
    exec(code, namespace)
    return namespace["_kernel"]


@register_backend
class CpuBackend(Backend):
    """The multicore CPU target: Python/NumPy emission + exec binding."""

    name = "cpu"

    def emit(self, ctx) -> str:
        return emit_source(ctx.fn, ast=ctx.ast)

    def bind(self, ctx) -> CompiledKernel:
        pyfunc = _bind_python_kernel(ctx.fn, ctx.source, "tiramisu")
        return CompiledKernel(ctx.fn, ctx.source, pyfunc,
                              collect_buffers(ctx.fn), ctx.fn.param_names)


def compile_cpu(fn: Function, check_legality: bool = False,
                verbose: bool = False, **opts) -> CompiledKernel:
    """Deprecated shim: compile for the CPU target through the staged
    driver (prefer ``fn.compile("cpu")``)."""
    from repro.driver import compile_function
    return compile_function(fn, target="cpu", check_legality=check_legality,
                            verbose=verbose, **opts)
