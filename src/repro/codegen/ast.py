"""The backend-independent AST produced from Layer IV (paper Section V-A).

The AST is a tree of loops, guards, and statement instances; loop bounds
are symbolic (max-of-affine lower bounds, min-of-affine upper bounds over
outer loop variables and parameters), exactly what the Cloog-style
generation algorithm produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isl import Constraint, LinExpr

# A bound is (coeff, LinExpr): coeff * t >= expr  /  coeff * t <= expr.
Bound = Tuple[int, LinExpr]


@dataclass
class Node:
    pass


@dataclass
class Block(Node):
    children: List[Node] = field(default_factory=list)


@dataclass
class Loop(Node):
    """A loop over dynamic dim ``level``.

    Bounds are lists of bound groups (one group per distinct statement
    domain sharing the loop): the loop lower bound is
    ``min over groups ( max over (a, e) of ceil(e / a) )`` and the upper
    bound is ``max over groups ( min over (b, f) of floor(f / b) )``.
    With a single group (the common case) this degenerates to the usual
    max-of-lower-bounds / min-of-upper-bounds.
    """

    level: int                       # dynamic dim index (loop var = t{level})
    var: str                         # display name of the loop variable
    lowers: List[List[Bound]]
    uppers: List[List[Bound]]
    body: Block
    tag: Optional[object] = None     # schedule.Tag or None
    comps: Tuple[str, ...] = ()      # names of computations inside


@dataclass
class Stmt(Node):
    comp: object                     # the Computation
    guards: List[Constraint] = field(default_factory=list)
    depth: int = 0                   # number of enclosing dynamic dims


def walk(node: Node):
    yield node
    if isinstance(node, Block):
        for child in node.children:
            yield from walk(child)
    elif isinstance(node, Loop):
        yield from walk(node.body)


def loops_in(node: Node) -> List[Loop]:
    return [n for n in walk(node) if isinstance(n, Loop)]


def stmts_in(node: Node) -> List[Stmt]:
    return [n for n in walk(node) if isinstance(n, Stmt)]
