"""Advanced distributed-backend scenarios: bidirectional halo exchange,
barriers, distributed + nested parallel loops, and the Figure 3(c)
pipeline end to end."""

import numpy as np
import pytest

from repro import (ASYNC, SYNC, Buffer, Computation, Function, Input,
                   Param, Var, barrier_at, receive, send)


class TestBidirectionalExchange:
    """Each node exchanges a boundary element with BOTH neighbours —
    requires genuinely concurrent ranks (a sequential simulator would
    deadlock)."""

    def build(self):
        R, Nodes = Param("R"), Param("Nodes")
        f = Function("bidir", params=[R, Nodes])
        with f:
            # local layout: [left_halo, x0..x(R-1), right_halo]
            lin = Input("lin", [Var("x", 0, R + 2)])
            su = Var("su", 0, Nodes - 1)
            sd = Var("sd", 1, Nodes)
            ru = Var("ru", 1, Nodes)
            rd = Var("rd", 0, Nodes - 1)
            # send my last element up; my first element down
            s_up = send([su], lin.get_buffer(), R, 1, su + 1, (ASYNC,))
            s_dn = send([sd], lin.get_buffer(), 1, 1, sd - 1, (ASYNC,))
            r_up = receive([ru], lin.get_buffer(), 0, 1, ru - 1, (SYNC,))
            r_dn = receive([rd], lin.get_buffer(), R + 1, 1, rd + 1,
                           (SYNC,))
            i = Var("i", 0, R)
            out = Computation("out", [i], None)
            out.set_expression(lin(i) + lin(i + 1) + lin(i + 2))
        for op, level in ((s_up, "su"), (s_dn, "sd"), (ru_op := r_up, "ru"),
                          (r_dn, "rd")):
            op.distribute(level)
        s_dn.after(s_up)
        r_up.after(s_dn)
        r_dn.after(r_up)
        out.after(r_dn)
        return f

    def test_three_point_stencil_across_nodes(self):
        f = self.build()
        k = f.compile("distributed")
        ranks, rows = 4, 6
        full = np.arange(1, ranks * rows + 1, dtype=np.float64)

        def rank_input(q):
            slab = np.zeros(rows + 2)
            slab[1:rows + 1] = full[q * rows:(q + 1) * rows]
            return {"lin": slab}

        res = k(ranks=ranks, inputs=rank_input,
                params={"R": rows, "Nodes": ranks})
        got = np.concatenate([r["out"] for r in res])
        padded = np.concatenate([[0.0], full, [0.0]])
        ref = padded[:-2] + padded[1:-1] + padded[2:]
        assert np.allclose(got, ref)
        # interior boundaries came from real messages
        assert k.last_stats.message_count() == 2 * (ranks - 1)


class TestBarrier:
    def test_global_barrier_runs(self):
        Nodes = Param("Nodes")
        f = Function("f", params=[Nodes])
        with f:
            c = Computation("c", [Var("q", 0, Nodes), Var("i", 0, 4)], 1.0)
        op = barrier_at(c)
        # run the barrier after the computation on every rank
        f.order_directives.clear()
        f.order_after(op, c, -1)
        c.distribute("q")
        k = f.compile("distributed")
        res = k(ranks=3, inputs={}, params={"Nodes": 3})
        assert all((r["c"][q] == 1).all() for q, r in enumerate(res))


class TestDistributedPlusParallel:
    def test_inner_parallel_tag_composes(self):
        """'All other scheduling commands can be composed with sends,
        recvs, and distributed loops' (Section III-C)."""
        P, Nodes = Param("P"), Param("Nodes")
        f = Function("f", params=[P, Nodes])
        with f:
            q, i, j = Var("q", 0, Nodes), Var("i", 0, P), Var("j", 0, P)
            c = Computation("c", [q, i, j], None)
            c.set_expression(1.0 * q + 0.5)
        c.distribute("q")
        c.parallelize("i")
        c.vectorize("j", 4)
        k = f.compile("distributed")
        res = k(ranks=2, inputs={}, params={"P": 8, "Nodes": 2})
        for rank in range(2):
            assert np.allclose(res[rank]["c"][rank], rank + 0.5)

    def test_tiled_distributed(self):
        P, Nodes = Param("P"), Param("Nodes")
        f = Function("f", params=[P, Nodes])
        with f:
            q, i, j = Var("q", 0, Nodes), Var("i", 0, P), Var("j", 0, P)
            c = Computation("c", [q, i, j], 2.0)
        c.tile("i", "j", 4, 4)
        c.distribute("q")
        k = f.compile("distributed")
        res = k(ranks=2, inputs={}, params={"P": 10, "Nodes": 2})
        assert (res[1]["c"][1] == 2).all()


class TestMessageOrdering:
    def test_fifo_per_channel(self):
        """Two sends from the same source arrive in order."""
        Nodes = Param("Nodes")
        f = Function("f", params=[Nodes])
        with f:
            buf = Buffer("b", [2])
            s1_it = Var("s1", 1, Nodes)
            s2_it = Var("s2", 1, Nodes)
            r1_it = Var("r1", 0, Nodes - 1)
            r2_it = Var("r2", 0, Nodes - 1)
            s1 = send([s1_it], buf, 0, 1, s1_it - 1, (ASYNC,))
            s2 = send([s2_it], buf, 1, 1, s2_it - 1, (ASYNC,))
            r1 = receive([r1_it], buf, 0, 1, r1_it + 1, (SYNC,))
            r2 = receive([r2_it], buf, 1, 1, r2_it + 1, (SYNC,))
            init = Computation("init", [Var("i", 0, 2)], None)
            init.set_expression(10.0 + Var("i", 0, 2))
            init.store_in(buf, [Var("i", 0, 2)])
        for op, lvl in ((s1, "s1"), (s2, "s2"), (r1, "r1"), (r2, "r2")):
            op.distribute(lvl)
        s1.after(init)
        s2.after(s1)
        r1.after(s2)
        r2.after(r1)
        buf.kind = __import__("repro.core.buffer",
                              fromlist=["ArgKind"]).ArgKind.OUTPUT
        k = f.compile("distributed")
        res = k(ranks=2, inputs={}, params={"Nodes": 2})
        # rank 0 received rank 1's init values in slot order
        assert res[0]["b"][0] == 10.0 and res[0]["b"][1] == 11.0
