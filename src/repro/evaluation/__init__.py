"""Evaluation harness: figure regeneration and model calibration."""

from .calibration import (CalibrationRow, calibrate_kernel,
                          calibration_table, render_calibration)

__all__ = [
    "CalibrationRow",
    "calibrate_kernel",
    "calibration_table",
    "render_calibration",
]
