"""Exact integer feasibility of affine constraint conjunctions.

This is the Omega test of Pugh (1991) with one substitution: instead of
the "mod-hat" trick for non-unit equality coefficients, equalities are
eliminated exactly via a Hermite-normal-form lattice solve
(:mod:`repro.isl.intlinalg`), after which a pure inequality system is
decided with real-shadow / dark-shadow elimination plus splinter
enumeration.  The result is an *exact* integer emptiness test for the
conjunctions that arise in polyhedral compilation (all dimensions,
including parameters and existential divs, are treated as free integer
variables, matching ISL's unconstrained-parameter semantics).
"""

from __future__ import annotations

from contextlib import contextmanager
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .constraint import EQ, Constraint
from .intlinalg import solve_integer_system
from .linexpr import Dim

# A row is (coeffs, const): sum coeffs[v]*x_v + const, over var indices.
Row = Tuple[Dict[int, int], int]

_MAX_INEQS = 4000  # blowup guard; beyond this we fall back conservatively


class OmegaBudgetExceeded(Exception):
    """Raised when the inequality system grows past the safety budget."""


#: Decide rational feasibility (real-shadow-only FM on the reduced row
#: system, no lattice solve, no splinters) before the expensive integer
#: machinery and short-circuit when the rational relaxation is already
#: empty (rational-empty implies integer-empty).  Module-level so the
#: property tests can compare both paths.
USE_RATIONAL_FASTPATH = True

#: Gate the syntactic pre-filters (:func:`_prefilter_empty`) and the
#: unit-coefficient Gaussian elimination; with all three flags off the
#: module runs the original HNF-for-every-equality algorithm.  Kept
#: reachable so property tests and the perf gate
#: (benchmarks/test_isl_cache_perf.py) can compare old and new paths on
#: the machine they run on.
USE_PREFILTERS = True
USE_UNIT_ELIMINATION = True


@contextmanager
def legacy_mode():
    """Run a block with every hot-path shortcut off (pre-filters, unit
    elimination, rational fast-path) — the pre-optimization algorithm."""
    global USE_RATIONAL_FASTPATH, USE_PREFILTERS, USE_UNIT_ELIMINATION
    saved = (USE_RATIONAL_FASTPATH, USE_PREFILTERS, USE_UNIT_ELIMINATION)
    USE_RATIONAL_FASTPATH = USE_PREFILTERS = USE_UNIT_ELIMINATION = False
    try:
        yield
    finally:
        USE_RATIONAL_FASTPATH, USE_PREFILTERS, USE_UNIT_ELIMINATION = saved


def _prefilter_empty(constraints) -> bool:
    """Cheap syntactic emptiness checks run before the full Omega test.

    Detects (a) any single trivially-false constraint, (b) contradictory
    parallel equalities (``i = 1`` and ``i = 2`` share one coefficient
    vector), and (c) an empty intersection of single-variable bounds
    (``i >= 4`` and ``i <= 2``).  Sound both ways: a ``True`` here means
    the integer set is certainly empty; ``False`` decides nothing.
    """
    from repro.obs.metrics import metrics
    eq_consts: Dict[Tuple, int] = {}
    lo: Dict[Dim, int] = {}
    hi: Dict[Dim, int] = {}

    def bounded_empty(d: Dim) -> bool:
        return d in lo and d in hi and lo[d] > hi[d]

    for c in constraints:
        if c.is_trivially_false():
            metrics.counter("isl.empty.prefilter_trivial").inc()
            return True
        coeffs = c.expr.coeffs
        const = int(c.expr.const)
        if c.kind == EQ:
            key = tuple(coeffs.items())
            prev = eq_consts.setdefault(key, const)
            if prev != const:
                metrics.counter("isl.empty.prefilter_eq_clash").inc()
                return True
        if len(coeffs) != 1:
            continue
        (dim, coeff), = coeffs.items()
        coeff = int(coeff)
        if c.kind == EQ:
            if abs(coeff) != 1:
                continue  # non-divisible const was already caught above
            val = -const * coeff
            lo[dim] = max(lo.get(dim, val), val)
            hi[dim] = min(hi.get(dim, val), val)
        elif coeff > 0:
            # coeff*d + const >= 0  =>  d >= ceil(-const/coeff)
            bound = -(const // coeff)
            lo[dim] = max(lo.get(dim, bound), bound)
        else:
            # d <= floor(const/(-coeff))
            bound = const // (-coeff)
            hi[dim] = min(hi.get(dim, bound), bound)
        if bounded_empty(dim):
            metrics.counter("isl.empty.prefilter_bounds").inc()
            return True
    return False


def conjunction_is_empty(bmap) -> bool:
    """True iff the basic map has no integer points (exact)."""
    if USE_PREFILTERS and _prefilter_empty(bmap.constraints):
        return True

    var_ids: Dict[Dim, int] = {}

    def vid(dim: Dim) -> int:
        if dim not in var_ids:
            var_ids[dim] = len(var_ids)
        return var_ids[dim]

    eqs: List[Row] = []
    ineqs: List[Row] = []
    for c in bmap.constraints:
        coeffs = {vid(d): int(v) for d, v in c.expr.coeffs.items()}
        row = (coeffs, int(c.expr.const))
        (eqs if c.kind == EQ else ineqs).append(row)
    try:
        return not _feasible(eqs, ineqs)
    except OmegaBudgetExceeded:
        # Conservative fallback: rational feasibility (never claims empty
        # when the integer set is nonempty only risks the safe direction:
        # a rationally-feasible report of "nonempty" may be wrong for
        # integers, which makes legality checks conservative, not unsound).
        from .fourier_motzkin import rational_feasible
        return not rational_feasible(bmap.constraints)


def _n_vars(rows: Sequence[Row]) -> int:
    top = -1
    for coeffs, _ in rows:
        for v in coeffs:
            if v > top:
                top = v
    return top + 1


def _feasible(eqs: List[Row], ineqs: List[Row]) -> bool:
    if eqs and USE_UNIT_ELIMINATION:
        reduced = _eliminate_unit_equalities(eqs, ineqs)
        if reduced is None:
            return False
        eqs, ineqs = reduced
    if eqs:
        # Only equalities whose every coefficient is >= 2 in magnitude are
        # left; those need the full Hermite-normal-form lattice solve —
        # unless even the rational relaxation is already empty.
        if USE_RATIONAL_FASTPATH and not _rational_rows_feasible(eqs, ineqs):
            from repro.obs.metrics import metrics
            metrics.counter("isl.empty.rational_fastpath").inc()
            return False
        reduced = _eliminate_equalities(eqs, ineqs,
                                        _n_vars(eqs) if not ineqs
                                        else max(_n_vars(eqs), _n_vars(ineqs)))
        if reduced is None:
            return False
        ineqs, _ = reduced
    return _ineq_feasible(ineqs)


def _rational_rows_feasible(eqs: List[Row], ineqs: List[Row]) -> bool:
    """Feasibility of the real relaxation of the row system.

    Equalities are substituted exactly by cross-multiplication, then the
    pure inequality system runs Fourier-Motzkin with the real shadow
    only (no dark shadow, no splinter enumeration, no lattice solve).
    One-sided: a ``False`` here proves the *integer* system empty too;
    ``True`` decides nothing about integer feasibility.
    """
    work = [(dict(c), k) for c, k in eqs]
    ineqs = [(dict(c), k) for c, k in ineqs]
    while work:
        coeffs, const = work.pop()
        coeffs = {v: c for v, c in coeffs.items() if c}
        if not coeffs:
            if const != 0:
                return False
            continue
        var, a = min(coeffs.items(), key=lambda vc: abs(vc[1]))
        sign = 1 if a > 0 else -1
        rest = ({v: c for v, c in coeffs.items() if v != var}, const)

        def subst(row: Row) -> Row:
            # a*var + e = 0 and c*var + f (op) 0:
            # scale by |a| > 0 and substitute: |a|*f - sign(a)*c*e (op) 0.
            c = row[0].get(var, 0)
            if not c:
                return row
            out = {v: abs(a) * q for v, q in row[0].items() if v != var}
            for v, q in rest[0].items():
                val = out.get(v, 0) - sign * c * q
                if val:
                    out[v] = val
                else:
                    out.pop(v, None)
            return (out, abs(a) * row[1] - sign * c * rest[1])

        work = [subst(r) for r in work]
        ineqs = [subst(r) for r in ineqs]
    try:
        return _ineq_feasible(ineqs, rational=True)
    except OmegaBudgetExceeded:
        return True  # undecided: fall through to the integer machinery


def _subst_row(row: Row, var: int, sub: Row) -> Row:
    """Replace ``var`` in ``row`` by the affine expression ``sub``."""
    coeffs, const = row
    a = coeffs.get(var, 0)
    if not a:
        return row
    out = {v: c for v, c in coeffs.items() if v != var}
    sub_coeffs, sub_const = sub
    for v, c in sub_coeffs.items():
        val = out.get(v, 0) + a * c
        if val:
            out[v] = val
        else:
            out.pop(v, None)
    return (out, const + a * sub_const)


def _eliminate_unit_equalities(eqs: List[Row], ineqs: List[Row]
                               ) -> Optional[Tuple[List[Row], List[Row]]]:
    """Gaussian elimination of equalities with a +-1 coefficient.

    The schedule and access relations of polyhedral compilation are almost
    entirely unit-coefficient equalities (``o_k - i_k = 0``), so exact
    back-substitution resolves them at a fraction of the cost of the
    Hermite-normal-form lattice solve, which stays as the fallback for
    genuinely non-unit systems.  Returns ``(remaining_eqs, ineqs)`` or
    ``None`` when a contradiction (constant or divisibility) surfaces.
    """
    # Rows live in an id-indexed table with a per-variable occurrence
    # index, so each substitution touches only the rows that actually
    # contain the eliminated variable (the systems here are sparse: a
    # schedule equality involves 2-3 of dozens of variables).
    rows: Dict[int, Tuple[Row, bool]] = {}
    occurs: Dict[int, set] = {}
    pending: List[int] = []

    def _index(rid: int, row: Row, is_eq: bool) -> None:
        rows[rid] = (row, is_eq)
        for v in row[0]:
            occurs.setdefault(v, set()).add(rid)

    rid = 0
    for coeffs, const in eqs:
        _index(rid, ({v: c for v, c in coeffs.items() if c}, const), True)
        pending.append(rid)
        rid += 1
    for coeffs, const in ineqs:
        _index(rid, ({v: c for v, c in coeffs.items() if c}, const), False)
        rid += 1

    def _unindex(tid: int) -> None:
        row, _ = rows.pop(tid)
        for v in row[0]:
            ids = occurs.get(v)
            if ids is not None:
                ids.discard(tid)

    while pending:
        tid = pending.pop()
        if tid not in rows:
            continue
        (coeffs, const), is_eq = rows[tid]
        if not is_eq:
            continue
        if not coeffs:
            if const != 0:
                return None
            _unindex(tid)
            continue
        g = 0
        for c in coeffs.values():
            g = gcd(g, abs(c))
        if g > 1:
            if const % g != 0:
                return None
            coeffs = {v: c // g for v, c in coeffs.items()}
            const //= g
            rows[tid] = ((coeffs, const), True)
        unit = None
        for v, c in coeffs.items():
            if c in (1, -1):
                unit = (v, c)
                break
        if unit is None:
            continue  # stays as residual unless a later subst touches it
        var, c = unit
        _unindex(tid)
        # c*var + rest + const = 0  =>  var = -c*(rest + const)  (c = +-1)
        sub: Row = ({v: -c * a for v, a in coeffs.items() if v != var},
                    -c * const)
        for oid in list(occurs.pop(var, ())):
            old_row, old_is_eq = rows[oid]
            new_row = _subst_row(old_row, var, sub)
            for v in old_row[0]:
                if v != var and v not in new_row[0]:
                    occurs[v].discard(oid)
            for v in new_row[0]:
                if v not in old_row[0]:
                    occurs.setdefault(v, set()).add(oid)
            rows[oid] = (new_row, old_is_eq)
            if old_is_eq:
                pending.append(oid)

    out_eqs: List[Row] = []
    out_ineqs: List[Row] = []
    for row, is_eq in rows.values():
        (out_eqs if is_eq else out_ineqs).append(row)
    return out_eqs, out_ineqs


def _eliminate_equalities(eqs: List[Row], ineqs: List[Row], n_vars: int
                          ) -> Optional[Tuple[List[Row], int]]:
    """Solve the equality lattice, substitute into the inequalities.

    Returns the inequality system over the lattice's free coordinates, or
    ``None`` when the equalities alone are integer-infeasible.
    """
    a = [[row[0].get(v, 0) for v in range(n_vars)] for row in eqs]
    b = [-row[1] for row in eqs]
    solved = solve_integer_system(a, b)
    if solved is None:
        return None
    x0, basis = solved
    n_free = len(basis)
    out: List[Row] = []
    for coeffs, const in ineqs:
        new_const = const + sum(c * x0[v] for v, c in coeffs.items())
        new_coeffs: Dict[int, int] = {}
        for k in range(n_free):
            val = sum(c * basis[k][v] for v, c in coeffs.items())
            if val:
                new_coeffs[k] = val
        out.append((new_coeffs, new_const))
    return out, n_free


def _normalize(row: Row) -> Optional[Row]:
    """Tighten an inequality row; ``None`` means trivially true."""
    coeffs, const = row
    coeffs = {v: c for v, c in coeffs.items() if c}
    if not coeffs:
        return ({}, const)
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        coeffs = {v: c // g for v, c in coeffs.items()}
        const = const // g if const >= 0 else -((-const + g - 1) // g)
    return (coeffs, const)


def _ineq_feasible(ineqs: List[Row], depth: int = 0,
                   rational: bool = False) -> bool:
    # Normalize, dedupe, keep tightest of parallel constraints.
    tight: Dict[Tuple, int] = {}
    for row in ineqs:
        norm = _normalize(row)
        coeffs, const = norm
        if not coeffs:
            if const < 0:
                return False
            continue
        key = tuple(sorted(coeffs.items()))
        if key not in tight or const < tight[key]:
            tight[key] = const
    system: List[Row] = [(dict(k), c) for k, c in tight.items()]
    # Opposite-parallel contradiction check: e >= 0 and -e + c >= 0
    # requires c >= 0 already handled through elimination; quick check:
    for key, const in tight.items():
        neg = tuple(sorted((v, -c) for v, c in key))
        if neg in tight and const + tight[neg] < 0:
            return False
    if not system:
        return True
    if len(system) > _MAX_INEQS:
        raise OmegaBudgetExceeded()

    variables = sorted({v for coeffs, _ in system for v in coeffs})

    # Remove variables bounded on only one side (exact elimination).
    changed = True
    while changed:
        changed = False
        for v in list(variables):
            signs = {(c > 0) for coeffs, _ in system for w, c in
                     coeffs.items() if w == v}
            if len(signs) == 1:
                system = [row for row in system if v not in row[0]]
                variables.remove(v)
                changed = True
    if not variables:
        return all(const >= 0 for coeffs, const in system if not coeffs)
    if not system:
        return True

    # Choose elimination variable: prefer an exact one (all unit
    # coefficients on one side); otherwise minimize combination count.
    def cost(v: int) -> Tuple[int, int]:
        lo = sum(1 for coeffs, _ in system if coeffs.get(v, 0) > 0)
        up = sum(1 for coeffs, _ in system if coeffs.get(v, 0) < 0)
        unit_lo = all(coeffs.get(v, 0) in (0, 1) for coeffs, _ in system
                      if coeffs.get(v, 0) > 0)
        unit_up = all(coeffs.get(v, 0) in (0, -1) for coeffs, _ in system
                      if coeffs.get(v, 0) < 0)
        exact = 0 if (unit_lo or unit_up) else 1
        return (exact, lo * up)

    var = min(variables, key=cost)
    lowers: List[Tuple[int, Row]] = []  # a*var >= -rest : (a, rest_row)
    uppers: List[Tuple[int, Row]] = []  # b*var <= rest  : (b, rest_row)
    rest_rows: List[Row] = []
    for coeffs, const in system:
        c = coeffs.get(var, 0)
        rest = ({v: k for v, k in coeffs.items() if v != var}, const)
        if c == 0:
            rest_rows.append((coeffs, const))
        elif c > 0:
            lowers.append((c, rest))
        else:
            uppers.append((-c, rest))

    exact = (all(a == 1 for a, _ in lowers)
             or all(b == 1 for b, _ in uppers))

    def combine(scale_shift: int) -> List[Row]:
        rows = list(rest_rows)
        for a, (lc, lk) in lowers:
            for b, (uc, uk) in uppers:
                # a*var + l >= 0 and -b*var + u >= 0
                # => b*l + a*u >= 0 (real); >= (a-1)(b-1) for dark shadow.
                coeffs: Dict[int, int] = {}
                for v, c in lc.items():
                    coeffs[v] = coeffs.get(v, 0) + b * c
                for v, c in uc.items():
                    coeffs[v] = coeffs.get(v, 0) + a * c
                const = b * lk + a * uk - (scale_shift * (a - 1) * (b - 1))
                rows.append((coeffs, const))
        return rows

    if exact or rational:
        # Unit-coefficient elimination is integer-exact; in rational mode
        # the real shadow alone is the answer by definition.
        return _ineq_feasible(combine(0), depth + 1, rational)

    if not _ineq_feasible(combine(0), depth + 1):
        return False  # real shadow empty => no rational point at all
    if _ineq_feasible(combine(1), depth + 1):
        return True   # dark shadow nonempty => integer point exists
    # Splinter: any integer solution outside the dark shadow satisfies
    # a*var = -l + k with 0 <= k <= (a*b_max - a - b_max)/b_max for some
    # lower bound (a, l).
    b_max = max(b for b, _ in uppers)
    for a, (lc, lk) in lowers:
        top = (a * b_max - a - b_max) // b_max
        for k in range(top + 1):
            # Equality: a*var + l - k = 0 where l = lc + lk.
            eq_coeffs = dict(lc)
            eq_coeffs[var] = eq_coeffs.get(var, 0) + a
            eq_row: Row = (eq_coeffs, lk - k)
            if _feasible([eq_row], system):
                return True
    return False
