"""Analytical CPU performance model.

Estimates execution time of a scheduled Tiramisu function on a
:class:`~repro.machine.params.CpuMachine` by walking the generated loop
AST: trip counts come from the synthesized bounds, compute cost from the
expression trees, and memory cost from a reuse-distance-style cache model
over the affine access functions.  The model is deliberately simple but
captures the effects the paper's evaluation turns on:

- vectorization (lane-parallel compute + streaming loads),
- full/partial tile separation (guards suppress vectorization),
- loop tiling (footprints dropping into L1/L2 change access latency),
- data layout (unit-stride versus strided innermost access, SOA/AOS,
  array packing),
- parallelization (core scaling with an efficiency factor),
- loop fusion (smaller intermediate footprints).

Absolute times are not meaningful (see DESIGN.md); ratios are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.ast import Block, Loop, Stmt
from repro.core.computation import Input, Operation
from repro.ir.affine import NonAffineError, expr_to_linexpr
from repro.ir.expr import (Access, BinOp, Call, Cast, Const, Expr, IterVar,
                           ParamRef, Select, UnOp, accesses_in,
                           substitute_exprs)
from repro.isl.linexpr import OUT, PARAM, LinExpr

from .params import CpuMachine, DEFAULT_CPU


@dataclass
class CostReport:
    seconds: float = 0.0
    flops: float = 0.0
    mem_bytes: float = 0.0
    dram_bytes: float = 0.0    # traffic actually reaching DRAM
    cycles: float = 0.0
    per_computation: Dict[str, float] = field(default_factory=dict)
    # per_computation scaled to seconds, normalized so the shares sum
    # to ``seconds`` even when the bandwidth floor dominates.  This is
    # the modeled side of the observability layer's model-vs-measured
    # calibration (repro.evaluation.calibration).
    per_computation_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "CostReport") -> None:
        self.seconds += other.seconds
        self.flops += other.flops
        self.mem_bytes += other.mem_bytes
        for k, v in other.per_computation.items():
            self.per_computation[k] = self.per_computation.get(k, 0.0) + v


@dataclass
class _LoopCtx:
    level: int
    trip: float
    mid: float              # representative value of the loop variable
    tag: Optional[object]
    vector_ok: bool         # vector tag present AND statement vectorizable
    lo: float = 0.0
    hi: float = 0.0


def _flops_in(expr: Expr) -> float:
    count = 0.0
    for node in expr.walk():
        if isinstance(node, BinOp) and node.op in "+-*/%":
            # +,-,* are single (often fused) ops; division is expensive.
            count += 4 if node.op in "/%" else 1
        elif isinstance(node, Call):
            count += {"min": 1, "max": 1, "abs": 1, "clamp": 4,
                      "sqrt": 8, "exp": 12, "log": 12, "pow": 15,
                      "floor": 2}.get(node.fn, 2)
        elif isinstance(node, Select):
            count += 2
        elif isinstance(node, Cast):
            count += 1
    return count


class CpuCostModel:
    def __init__(self, fn, params: Dict[str, int],
                 machine: CpuMachine = DEFAULT_CPU,
                 packed_buffers: Sequence[str] = (),
                 num_threads: Optional[int] = None):
        self.fn = fn
        self.params = dict(params)
        self.m = machine
        # Worker cap mirroring the compile option: modeled parallel
        # loops scale to min(cores, num_threads).
        self.num_threads = num_threads
        # Buffers the schedule declares as packed (array packing gives
        # them unit-stride behaviour regardless of the access pattern).
        self.packed = set(packed_buffers)
        self.ast = fn.lower()
        self._shape_cache: Dict[str, Tuple[int, ...]] = {}

    # -- public API -------------------------------------------------------

    def estimate(self) -> CostReport:
        report = CostReport()
        cycles = self._block_cycles(self.ast, [], report)
        report.cycles = cycles
        compute_s = cycles * self.m.cycle_ns * 1e-9
        # Memory-bound floor: DRAM traffic cannot stream faster than the
        # machine's bandwidth, regardless of cores/vectors.
        bw_s = report.dram_bytes / (self.m.mem_bandwidth_gbs * 1e9)
        report.seconds = max(compute_s, bw_s)
        pc_total = sum(report.per_computation.values())
        if pc_total > 0:
            scale = report.seconds / pc_total
            report.per_computation_seconds = {
                name: c * scale
                for name, c in report.per_computation.items()}
        return report

    # -- helpers ---------------------------------------------------------------

    def _buffer_shape(self, buffer) -> Tuple[int, ...]:
        if buffer.name not in self._shape_cache:
            self._shape_cache[buffer.name] = buffer.concrete_shape(
                self.params)
        return self._shape_cache[buffer.name]

    def _eval_bound(self, groups, loops: List[_LoopCtx],
                    is_lower: bool, at: str = "mid") -> float:
        values = {(OUT, lc.level): getattr(lc, at) for lc in loops}
        values.update({(PARAM, i): self.params[p]
                       for i, p in enumerate(self.fn.param_names)})
        outer = None
        for g in groups:
            inner = None
            for coeff, e in g:
                v = e.evaluate(values) / coeff
                if inner is None:
                    inner = v
                else:
                    inner = max(inner, v) if is_lower else min(inner, v)
            if outer is None:
                outer = inner
            else:
                outer = min(outer, inner) if is_lower else max(outer, inner)
        return float(outer)

    # -- recursive walk -----------------------------------------------------------

    def _block_cycles(self, block: Block, loops: List[_LoopCtx],
                      report: CostReport,
                      produced: Optional[set] = None) -> float:
        # Buffers written by earlier statements of this (fused) loop
        # body: reads of them hit cache (producer-consumer locality from
        # fusion / compute_at), and their stores have already paid the
        # DRAM write-back once.
        produced = set() if produced is None else produced
        total = 0.0
        for child in block.children:
            if isinstance(child, Loop):
                total += self._loop_cycles(child, loops, report, produced)
            elif isinstance(child, Stmt):
                total += self._stmt_cycles(child, loops, report, produced)
                comp = child.comp
                if not isinstance(comp, Operation)                         and comp.expr is not None:
                    produced.add(id(comp.get_buffer()))
            elif isinstance(child, Block):
                total += self._block_cycles(child, loops, report, produced)
        return total

    def _loop_cycles(self, loop: Loop, loops: List[_LoopCtx],
                     report: CostReport,
                     produced: Optional[set] = None) -> float:
        lo = self._eval_bound(loop.lowers, loops, True)
        hi = self._eval_bound(loop.uppers, loops, False)
        trip = max(0.0, hi - lo + 1.0)
        if trip == 0.0:
            return 0.0
        ctx = _LoopCtx(level=loop.level, trip=trip, mid=(lo + hi) / 2.0,
                       tag=loop.tag, vector_ok=False, lo=lo, hi=hi)
        body = self._block_cycles(loop.body, loops + [ctx], report,
                                  set(produced) if produced else None)
        per_iter_overhead = self.m.loop_overhead_cycles
        # min/max bounds are evaluated once per loop entry (hoisted).
        bound_complexity = (len(loop.lowers) + len(loop.uppers) - 2)
        entry_overhead = bound_complexity * self.m.branch_cycles
        cycles = trip * (body + per_iter_overhead) + entry_overhead
        if loop.tag is not None:
            kind = loop.tag.kind
            if kind == "parallel":
                workers = self.m.cores if self.num_threads is None \
                    else min(self.m.cores, self.num_threads)
                usable = min(workers, trip)
                cycles /= max(1.0, usable * self.m.parallel_efficiency)
            elif kind == "unroll":
                # Unrolling reduces loop overhead and adds a little ILP.
                cycles = trip * (body / 1.15 + per_iter_overhead
                                 / max(1, loop.tag.factor or 4))
            elif kind == "vector" and self._vectorizable(loop):
                # One vector instruction covers `width` scalar lanes,
                # including the loop bookkeeping.
                width = min(loop.tag.factor or self.m.vector_width_f32,
                            self.m.vector_width_f32)
                cycles /= width
        return cycles

    @staticmethod
    def _vectorizable(loop: Loop) -> bool:
        stmts = loop.body.children
        return (len(stmts) == 1 and isinstance(stmts[0], Stmt)
                and not stmts[0].guards
                and stmts[0].comp.predicate is None)

    # -- statement cost ---------------------------------------------------------------

    def _stmt_cycles(self, stmt: Stmt, loops: List[_LoopCtx],
                     report: CostReport,
                     produced: Optional[set] = None) -> float:
        comp = stmt.comp
        if isinstance(comp, Operation):
            return self._op_cycles(comp, loops, report)
        if comp.expr is None:
            return 0.0
        innermost = loops[-1] if loops else None
        vectorized = (innermost is not None
                      and innermost.tag is not None
                      and innermost.tag.kind == "vector"
                      and not stmt.guards
                      and comp.predicate is None)
        flops = _flops_in(comp.expr)
        compute_cycles = flops / self.m.flops_per_cycle_scalar
        guard_cycles = len(stmt.guards) * self.m.branch_cycles
        mem_cycles, bytes_touched, dram_touched = self._memory_cycles(
            comp, loops, vectorized, produced or set())
        total = compute_cycles + guard_cycles + mem_cycles
        iters = 1.0
        for lc in loops:
            iters *= lc.trip
        report.flops += flops * iters
        report.mem_bytes += bytes_touched * iters
        report.dram_bytes += dram_touched * iters
        report.per_computation[comp.name] = (
            report.per_computation.get(comp.name, 0.0) + total * iters)
        return total

    def _op_cycles(self, op: Operation, loops: List[_LoopCtx],
                   report: CostReport) -> float:
        if op.op_kind in ("copy", "cache_copy"):
            buf = op.payload.get("dst")
            if buf is None:
                return 0.0
            if op.op_kind == "cache_copy":
                elems = 1.0
                for e in op.payload["extents"]:
                    elems *= e
            else:
                elems = 1.0
                for s in self._buffer_shape(buf):
                    elems *= s
            bytes_ = elems * buf.dtype.bits / 8
            bw_cycles = bytes_ / (self.m.mem_bandwidth_gbs
                                  * self.m.cycle_ns)
            return bw_cycles
        return 1.0

    def _memory_cycles(self, comp, loops: List[_LoopCtx],
                       vectorized: bool,
                       produced: set = frozenset()
                       ) -> Tuple[float, float, float]:
        """Cost of one statement instance's memory traffic."""
        accesses = self._collect_accesses(comp)
        dep_sets = [
            {idx for (kind, idx) in flat_le.dims() if kind == OUT}
            for (__, flat_le, ___) in accesses]
        total_cycles = 0.0
        total_bytes = 0.0
        dram_bytes = 0.0
        # Stencil taps: accesses to one buffer differing only by constant
        # offsets share cache lines; one representative pays the real
        # cost, the rest hit L1.
        group_seen = set()
        for (buffer, flat_le, elem_bytes), deps in zip(accesses, dep_sets):
            stride = self._innermost_stride(flat_le, loops)
            packed = buffer.name in self.packed
            if not deps:
                total_cycles += 0.25   # loop-invariant, register-resident
                continue
            if id(buffer) in produced:
                # Produced earlier in this fused loop body: cache-hot.
                total_cycles += 1.0 / max(1.0, 64.0 / elem_bytes)
                total_bytes += elem_bytes
                continue
            group_key = (id(buffer), tuple(sorted(flat_le.coeffs.items())))
            if group_key in group_seen:
                total_cycles += 1.0 / max(1.0, 64.0 / elem_bytes)
                total_bytes += elem_bytes
                continue
            group_seen.add(group_key)
            level = self._reuse_level(deps, loops, accesses, dep_sets)
            if packed or abs(stride) <= 4:
                # Small strides (e.g. interleaved RGB) still touch every
                # cache line once; treat as line-friendly.
                # Sequential: pipelined/prefetched, priced per line at
                # the hit level's throughput.
                line_cycles = {
                    "l1": 1.0,
                    "l2": 4.0,
                    "l3": 12.0,
                    # streaming DRAM: bandwidth-limited, prefetch hides
                    # latency.
                    "mem": 64.0 / (self.m.mem_bandwidth_gbs
                                   * self.m.cycle_ns),
                }[level]
                cost = line_cycles / max(1.0, 64.0 / elem_bytes)
            else:
                # Strided/random: latency per element, no line reuse;
                # out-of-order cores overlap ~6 misses (MLP).
                mlp = 6.0
                cost = {
                    "l1": self.m.l1_latency_cycles,
                    "l2": self.m.l2_latency_cycles / 2.0,
                    "l3": self.m.mem_latency_cycles * 0.35 / mlp,
                    "mem": self.m.mem_latency_cycles / mlp,
                }[level]
            total_cycles += cost
            total_bytes += elem_bytes
            if level == "mem":
                dram_bytes += elem_bytes
        return total_cycles, total_bytes, dram_bytes

    def _reuse_level(self, deps, loops: List[_LoopCtx],
                     accesses, dep_sets) -> str:
        """Cache level an access hits, given the loops it varies with.

        Walk candidate reuse loops (loops this access does NOT vary with)
        from the innermost outwards; at each, the access is a cache hit
        if the data every statement touches *inside* that loop — the sum
        over accesses of the product of the trip counts of the inner
        loops each access depends on — fits in some cache level.
        """
        best = "mem"
        rank = {"l1": 0, "l2": 1, "l3": 2, "mem": 3}
        trip_of = {lc.level: lc.trip for lc in loops}
        levels = sorted(trip_of)
        for pos in range(len(levels) - 1, -1, -1):
            level = levels[pos]
            inner = set(levels[pos + 1:])
            if level in deps:
                continue
            footprint = 0.0
            seen_addrs = set()
            for (other_buf, other_flat, other_bytes), other_deps in zip(
                    accesses, dep_sets):
                # Constant-offset taps of one buffer share their
                # footprint (same lines up to the halo).
                key = (id(other_buf),
                       tuple(sorted(other_flat.coeffs.items())))
                if key in seen_addrs:
                    continue
                seen_addrs.add(key)
                distinct = 1.0
                for d in other_deps & inner:
                    distinct *= max(1.0, trip_of[d])
                footprint += other_bytes * distinct
            if footprint <= self.m.l1_bytes:
                hit = "l1"
            elif footprint <= self.m.l2_bytes:
                hit = "l2"
            elif footprint <= self.m.l3_bytes:
                hit = "l3"
            else:
                hit = "mem"
            if rank[hit] < rank[best]:
                best = hit
        return best

    def _innermost_stride(self, flat_le: LinExpr,
                          loops: List[_LoopCtx]) -> float:
        if not loops:
            return 0.0
        inner = loops[-1].level
        return float(flat_le.coeff((OUT, inner)))

    def _collect_accesses(self, comp):
        """(buffer, flattened address LinExpr over time dims, elem bytes)
        for every read and the store of the statement."""
        out = []
        param_dims = {p: (PARAM, i)
                      for i, p in enumerate(self.fn.param_names)}

        def add(producer, index_exprs, is_store=False):
            buffer = producer.get_buffer()
            origins = None
            if not is_store and producer.name in comp.cached_reads:
                buffer, origins, __ = comp.cached_reads[producer.name]
            elif is_store and comp.cached_store is not None:
                buffer, origins = comp.cached_store
            shape = self._buffer_shape(buffer)
            les = []
            for e in index_exprs:
                try:
                    le = expr_to_linexpr(e, {**param_dims,
                                             **{nm: ("i", k) for k, nm in
                                                enumerate(comp.var_names)}})
                except NonAffineError:
                    le = LinExpr()  # non-affine: treat as random access
                les.append(le)
            # Substitute original dims by time expressions (comp.rev).
            flat = LinExpr()
            mult = 1
            for k in range(len(les) - 1, -1, -1):
                le = les[k]
                for orig_idx, nm in enumerate(comp.var_names):
                    le = le.substitute(("i", orig_idx), comp.rev[nm])
                if origins is not None and k < len(origins):
                    le = le - origins[k]
                flat = flat + le * mult
                mult *= shape[k] if k < len(shape) else 1
            elem_bytes = buffer.dtype.bits / 8.0
            out.append((buffer, flat, elem_bytes))

        for acc in accesses_in(comp.expr):
            producer = acc.computation
            if producer.inlined:
                continue
            table = {nm: idx for nm, idx in zip(producer.var_names,
                                                acc.indices)}
            buf_idx = [substitute_exprs(e, table)
                       for e in producer.store_indices()]
            add(producer, buf_idx)
        add(comp, comp.store_indices(), is_store=True)
        return out
