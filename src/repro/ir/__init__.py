"""Expression IR, scalar types, and affine extraction."""

from . import types
from .affine import NonAffineError, expr_to_linexpr, is_affine, try_expr_to_linexpr
from .expr import (Access, BinOp, BufferRead, Call, Cast, Const, Expr,
                   IterVar, ParamRef, Select, UnOp, absolute, accesses_in,
                   cast, clamp, exp, floor, log, maximum, minimum, pow_,
                   select, sqrt, substitute_exprs, wrap)

__all__ = [
    "types", "NonAffineError", "expr_to_linexpr", "is_affine",
    "try_expr_to_linexpr", "Access", "BinOp", "BufferRead", "Call", "Cast",
    "Const", "Expr", "IterVar", "ParamRef", "Select", "UnOp", "absolute",
    "accesses_in", "cast", "clamp", "exp", "floor", "log", "maximum",
    "minimum", "pow_", "select", "sqrt", "substitute_exprs", "wrap",
]
