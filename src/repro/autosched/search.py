"""Beam + evolutionary search over legal schedules (the tentpole).

The scheduling language spans a space the paper's successors explore
automatically (PAPERS.md: arXiv 1908.01057); this module searches it:

1. **Enumerate** candidate actions against the function's *current*
   schedule state — fuse-at-level for producer/consumer pairs,
   interchange of adjacent levels, tiling (sizes 16/32/64/128),
   vectorize-innermost, unroll (2/4/8), parallelize the outermost
   non-carried level — as reified :mod:`~repro.autosched.actions`.
2. **Prune** every extension with :func:`check_schedule_legality` (+
   the race detector for tagged levels), so *zero illegal plans reach
   the oracle* — the memoized ISL caches (PR 5) make thousands of
   probes affordable.
3. **Rank** survivors with a :class:`~repro.autosched.oracle.CostOracle`
   and keep the best ``beam_width`` plans per round; optionally re-rank
   the finalists with a :class:`~repro.autosched.oracle.MeasuredOracle`.

The evolutionary strategy seeds a population from the beam result and
refines numeric choices (tile sizes, unroll factors) plus drops/appends
actions under the same legality pruning — cheap local search where the
beam's fixed menu is too coarse.

Search accounting flows into the process metrics registry
(``autosched.candidates`` / ``.pruned_illegal`` / ``.beam_kept`` /
``.measured``) and, when tracing is on, into per-round tracer spans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.computation import Computation, Input, Operation
from repro.core.deps import (carried_at_level, check_parallel_legality,
                             check_schedule_legality, compute_dependences)
from repro.core.errors import IllegalScheduleError, ScheduleError
from repro.ir.expr import accesses_in
from repro.obs.events import (EVT_SEARCH, compile_context,
                              current_compile_id, new_compile_id)
from repro.obs.events import emit as emit_event
from repro.obs.metrics import metrics
from repro.obs.tracer import get_tracer

from .actions import (ActionError, Fuse, Interchange, Parallelize,
                      ScheduleAction, Tile, Unroll, Vectorize)
from .api import AutoScheduleResult, Strategy, register_strategy
from .oracle import CostOracle, ModelOracle
from .plan import SchedulePlan

#: The numeric menus of the move set.
TILE_SIZES = (16, 32, 64, 128)
UNROLL_FACTORS = (2, 4, 8)
VECTOR_LENGTH = 8
#: Tiling stops once a nest would exceed this many loop levels (the
#: hand-written two-level-blocked sgemm peaks at 7).
MAX_NEST_DEPTH = 7


def schedulable_computations(fn) -> List[Computation]:
    """The computations the search may transform: real statements (not
    inputs/operations) with an expression."""
    return [c for c in fn.active_computations()
            if not isinstance(c, (Input, Operation)) and c.expr is not None]


def producer_pairs(fn) -> List[Tuple[Computation, Computation]]:
    """(producer, consumer) pairs read through computation accesses."""
    comps = schedulable_computations(fn)
    pairs: List[Tuple[Computation, Computation]] = []
    for cons in comps:
        for acc in accesses_in(cons.expr):
            prod = acc.computation
            if prod in comps and prod is not cons \
                    and (prod, cons) not in pairs:
                pairs.append((prod, cons))
    return pairs


def enumerate_actions(fn, max_depth: int = MAX_NEST_DEPTH
                      ) -> List[ScheduleAction]:
    """The legal-looking moves from the function's current schedule
    state (structural filters only; real legality is the pruner's job).

    Filters keep the branching factor sane: interchange/tile only touch
    untagged adjacent levels, each computation gets at most one vector /
    unroll / parallel tag, fusion is only proposed for pairs with no
    existing ordering directive, and nests stop tiling at
    ``max_depth`` levels.
    """
    actions: List[ScheduleAction] = []
    comps = schedulable_computations(fn)

    ordered = {(a.name, b.name) for _, a, b, _ in fn.order_directives}
    for prod, cons in producer_pairs(fn):
        if (cons.name, prod.name) in ordered or \
                (prod.name, cons.name) in ordered:
            continue
        shared = min(len(prod.time_names), len(cons.time_names))
        for level in range(shared - 1, -1, -1):
            actions.append(Fuse(cons.name, prod.name, level))

    deps = compute_dependences(fn)
    beta = fn.resolve_order()
    depth = fn.max_depth()
    sched: Dict[str, object] = {}
    rels: Dict[int, object] = {}

    for comp in comps:
        n = len(comp.time_names)
        tagged = set(comp.tags)
        kinds = {t.kind for t in comp.tags.values()}

        for l in range(n - 1):
            if l not in tagged and l + 1 not in tagged:
                actions.append(Interchange(comp.name, l, l + 1))

        if n + 2 <= max_depth:
            for l in range(n - 1):
                if l in tagged or l + 1 in tagged:
                    continue
                for size in TILE_SIZES:
                    actions.append(Tile(comp.name, l, l + 1, size, size))

        if "vector" not in kinds and n >= 1 and (n - 1) not in tagged:
            actions.append(Vectorize(comp.name, n - 1, VECTOR_LENGTH))

        if "unroll" not in kinds:
            for l in ((n - 1, n - 2) if n >= 2 else (n - 1,)):
                if l < 0 or l in tagged:
                    continue
                for factor in UNROLL_FACTORS:
                    actions.append(Unroll(comp.name, l, factor))

        if "parallel" not in kinds:
            for level in range(min(2, n)):
                if level in tagged:
                    continue
                if not carried_at_level(fn, comp, level, deps=deps,
                                        beta=beta, depth=depth,
                                        sched=sched, rels=rels):
                    actions.append(Parallelize(comp.name, level))
                    break
    return actions


@dataclass
class SearchReport:
    """The beam/evolutionary ledger behind an AutoScheduleResult."""

    strategy: str
    rounds: int = 0
    candidates: int = 0
    pruned_illegal: int = 0
    beam_kept: int = 0
    measured: int = 0
    baseline_cost: float = float("inf")
    best_cost: float = float("inf")
    #: (round, best-cost-so-far) after each round, for convergence plots.
    history: List[Tuple[int, float]] = field(default_factory=list)


class _Budget:
    """A shared enumeration allowance across rounds/generations."""

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.limit is not None and self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _try_extension(fn, applied: SchedulePlan, action: ScheduleAction,
                   report: SearchReport) -> bool:
    """Push ``action`` onto the applied plan and keep it only if the
    full schedule stays legal.  Returns True with the action applied,
    or False with the function untouched.  This is the *only* gate
    between enumeration and the oracle: nothing illegal gets scored."""
    try:
        applied.push(fn, action)
    except (ScheduleError, ActionError):
        # Structurally invalid (e.g. tile levels went non-consecutive
        # after an earlier action): not a legality violation, just not
        # a move from this state.
        return False
    try:
        check_schedule_legality(fn)
        check_parallel_legality(fn)
        return True
    except IllegalScheduleError:
        applied.pop(fn)
        report.pruned_illegal += 1
        metrics.counter("autosched.pruned_illegal").inc()
        emit_event("search.prune", EVT_SEARCH, action=repr(action))
        return False


def _expand(fn, plan: SchedulePlan, budget: _Budget, seen: set,
            report: SearchReport) -> List[SchedulePlan]:
    """All legal one-action extensions of ``plan`` (unapplied copies)."""
    out: List[SchedulePlan] = []
    applied = plan.copy().apply(fn)
    try:
        for action in enumerate_actions(fn):
            candidate = plan.extended(action)
            key = candidate.serialize()
            if key in seen:
                continue
            seen.add(key)
            if not budget.take():
                break
            report.candidates += 1
            metrics.counter("autosched.candidates").inc()
            if _try_extension(fn, applied, action, report):
                applied.pop(fn)
                out.append(candidate)
                emit_event("search.candidate", EVT_SEARCH,
                           action=repr(action),
                           depth=len(candidate.actions))
    finally:
        if applied.applied:
            applied.undo()
    return out


def beam_search(fn, oracle: CostOracle, *, beam_width: int = 4,
                rounds: int = 3, budget: Optional[int] = None,
                measure_oracle: Optional[CostOracle] = None,
                measure_top_k: int = 4,
                report: Optional[SearchReport] = None
                ) -> Tuple[SchedulePlan, SearchReport]:
    """Beam search from the empty plan; returns (best plan, report).

    Each round expands every beam member by one legal action, ranks the
    union with ``oracle``, and keeps the ``beam_width`` cheapest.  The
    running best is tracked across rounds (extensions are not forced to
    improve monotonically).  When ``measure_oracle`` is given, the
    ``measure_top_k`` best distinct plans are re-ranked by measurement
    and the measured winner is returned.  ``fn`` is left pristine.

    The whole search runs under one ambient journal correlation id
    (inherited when a batch or caller installed one), so its round /
    candidate / prune / measure events — and the compiles a
    ``MeasuredOracle`` triggers — tell one story in the event log.
    """
    with compile_context(current_compile_id() or new_compile_id()):
        return _beam_search_inner(
            fn, oracle, beam_width=beam_width, rounds=rounds,
            budget=budget, measure_oracle=measure_oracle,
            measure_top_k=measure_top_k, report=report)


def _beam_search_inner(fn, oracle: CostOracle, *, beam_width: int,
                       rounds: int, budget: Optional[int],
                       measure_oracle: Optional[CostOracle],
                       measure_top_k: int,
                       report: Optional[SearchReport]
                       ) -> Tuple[SchedulePlan, SearchReport]:
    tracer = get_tracer()
    report = report or SearchReport(strategy="beam")
    emit_event("search.begin", EVT_SEARCH, strategy=report.strategy,
               function=fn.name, beam_width=beam_width, rounds=rounds)
    budget_ = _Budget(budget)
    baseline = SchedulePlan()
    report.baseline_cost = oracle.score(fn, baseline)
    beam: List[Tuple[SchedulePlan, float]] = [(baseline,
                                               report.baseline_cost)]
    best_pool: Dict[str, Tuple[SchedulePlan, float]] = {
        baseline.serialize(): beam[0]}
    seen = {baseline.serialize()}

    for round_no in range(rounds):
        frontier: List[SchedulePlan] = []
        with tracer.span("autosched.round", cat="autosched",
                         round=round_no, beam=len(beam)):
            for plan, _cost in beam:
                frontier.extend(_expand(fn, plan, budget_, seen, report))
            if not frontier:
                break
            scored = oracle.rank(fn, frontier)
        beam = scored[:beam_width]
        report.rounds = round_no + 1
        report.beam_kept += len(beam)
        metrics.counter("autosched.beam_kept").inc(len(beam))
        for plan, cost in beam:
            best_pool[plan.serialize()] = (plan, cost)
        report.history.append(
            (round_no, min(c for _, c in best_pool.values())))
        emit_event("search.round", EVT_SEARCH, round=round_no,
                   frontier=len(frontier), kept=len(beam),
                   best_cost=report.history[-1][1])

    finalists = sorted(best_pool.values(),
                       key=lambda pc: (pc[1], pc[0].serialize()))
    best_plan, best_cost = finalists[0]

    if measure_oracle is not None and len(finalists) > 1:
        top = [p for p, _ in finalists[:max(2, measure_top_k)]]
        emit_event("search.measure", EVT_SEARCH, finalists=len(top))
        with tracer.span("autosched.measure", cat="autosched",
                         finalists=len(top)):
            measured = measure_oracle.rank(fn, top)
        report.measured += len(top)
        best_plan, best_cost = measured[0]

    report.best_cost = best_cost
    emit_event("search.end", EVT_SEARCH, strategy=report.strategy,
               rounds=report.rounds, candidates=report.candidates,
               pruned=report.pruned_illegal, best_cost=best_cost,
               actions=len(best_plan.actions))
    return best_plan, report


def _mutations(plan: SchedulePlan, fn, rng: random.Random,
               seen: set) -> List[SchedulePlan]:
    """Local neighbors of ``plan``: numeric tweaks and action drops.
    (Appends come from the beam-style expansion in the caller.)"""
    out: List[SchedulePlan] = []

    def emit(candidate: SchedulePlan) -> None:
        key = candidate.serialize()
        if key not in seen:
            seen.add(key)
            out.append(candidate)

    for idx, action in enumerate(plan.actions):
        if isinstance(action, Tile):
            for size in TILE_SIZES:
                if size != action.size1:
                    tweaked = Tile(action.computation, action.level1,
                                   action.level2, size, size)
                    emit(SchedulePlan(plan.actions[:idx] + [tweaked]
                                      + plan.actions[idx + 1:]))
        elif isinstance(action, Unroll):
            for factor in UNROLL_FACTORS:
                if factor != action.factor:
                    tweaked = Unroll(action.computation, action.level,
                                     factor)
                    emit(SchedulePlan(plan.actions[:idx] + [tweaked]
                                      + plan.actions[idx + 1:]))
        # Dropping a mid-sequence action can invalidate the level
        # numbering of everything after it; only the tail drop is
        # guaranteed meaningful.
    if plan.actions:
        emit(SchedulePlan(plan.actions[:-1]))
    rng.shuffle(out)
    return out


def evolutionary_search(fn, oracle: CostOracle, *,
                        generations: int = 3, population: int = 6,
                        budget: Optional[int] = None, seed: int = 0,
                        beam_width: int = 4, rounds: int = 2,
                        measure_oracle: Optional[CostOracle] = None,
                        measure_top_k: int = 4
                        ) -> Tuple[SchedulePlan, SearchReport]:
    """Beam seed + mutation/selection refinement.

    Generations alternate mutation (tile/unroll tweaks, tail drops) and
    one-action extension over the current population, prune for
    legality, rank, and keep the ``population`` cheapest.  Deterministic
    for a fixed ``seed``.
    """
    with compile_context(current_compile_id() or new_compile_id()):
        return _evolutionary_search_inner(
            fn, oracle, generations=generations, population=population,
            budget=budget, seed=seed, beam_width=beam_width,
            rounds=rounds, measure_oracle=measure_oracle,
            measure_top_k=measure_top_k)


def _evolutionary_search_inner(fn, oracle: CostOracle, *,
                               generations: int, population: int,
                               budget: Optional[int], seed: int,
                               beam_width: int, rounds: int,
                               measure_oracle: Optional[CostOracle],
                               measure_top_k: int
                               ) -> Tuple[SchedulePlan, SearchReport]:
    report = SearchReport(strategy="evolutionary")
    best_plan, report = beam_search(
        fn, oracle, beam_width=beam_width, rounds=rounds, budget=budget,
        report=report, measure_oracle=None)
    report.strategy = "evolutionary"
    rng = random.Random(seed)
    budget_ = _Budget(budget)
    budget_.spent = report.candidates
    seen = {best_plan.serialize(), SchedulePlan().serialize()}
    pool: Dict[str, Tuple[SchedulePlan, float]] = {
        best_plan.serialize(): (best_plan, report.best_cost)}
    current = [best_plan]
    tracer = get_tracer()

    for gen in range(generations):
        candidates: List[SchedulePlan] = []
        with tracer.span("autosched.generation", cat="autosched",
                         generation=gen, population=len(current)):
            for plan in current:
                for mutant in _mutations(plan, fn, rng, seen):
                    if not budget_.take():
                        break
                    report.candidates += 1
                    metrics.counter("autosched.candidates").inc()
                    applied = None
                    try:
                        applied = mutant.copy().apply(fn)
                        check_schedule_legality(fn)
                        check_parallel_legality(fn)
                        candidates.append(mutant)
                    except IllegalScheduleError:
                        report.pruned_illegal += 1
                        metrics.counter("autosched.pruned_illegal").inc()
                    except (ScheduleError, ActionError):
                        pass
                    finally:
                        if applied is not None and applied.applied:
                            applied.undo()
                candidates.extend(
                    _expand(fn, plan, budget_, seen, report))
            if not candidates:
                break
            scored = oracle.rank(fn, candidates)
        keep = scored[:population]
        report.beam_kept += len(keep)
        metrics.counter("autosched.beam_kept").inc(len(keep))
        for plan, cost in keep:
            pool[plan.serialize()] = (plan, cost)
        current = [p for p, _ in keep]
        report.history.append(
            (rounds + gen, min(c for _, c in pool.values())))
        emit_event("search.round", EVT_SEARCH, round=rounds + gen,
                   generation=gen, frontier=len(candidates),
                   kept=len(keep), best_cost=report.history[-1][1])

    finalists = sorted(pool.values(),
                       key=lambda pc: (pc[1], pc[0].serialize()))
    best_plan, best_cost = finalists[0]
    if measure_oracle is not None and len(finalists) > 1:
        top = [p for p, _ in finalists[:max(2, measure_top_k)]]
        emit_event("search.measure", EVT_SEARCH, finalists=len(top))
        measured = measure_oracle.rank(fn, top)
        report.measured += len(top)
        best_plan, best_cost = measured[0]
    report.best_cost = best_cost
    emit_event("search.end", EVT_SEARCH, strategy=report.strategy,
               rounds=report.rounds, candidates=report.candidates,
               pruned=report.pruned_illegal, best_cost=best_cost,
               actions=len(best_plan.actions))
    return best_plan, report


def _default_oracle(oracle, params):
    if oracle is not None:
        return oracle
    return ModelOracle(params or {})


def _result(strategy: str, plan: SchedulePlan, report: SearchReport
            ) -> AutoScheduleResult:
    return AutoScheduleResult(
        strategy=strategy, plan=plan, report=report,
        candidates=report.candidates,
        pruned_illegal=report.pruned_illegal,
        beam_kept=report.beam_kept, measured=report.measured,
        best_cost=report.best_cost, baseline_cost=report.baseline_cost)


@register_strategy
class BeamStrategy(Strategy):
    """``strategy="beam"``: fixed-width beam over the action menu."""

    name = "beam"

    def run(self, fn, *, oracle=None, budget: Optional[int] = None,
            params: Optional[Dict[str, int]] = None,
            beam_width: int = 4, rounds: int = 3,
            measure_oracle=None, measure_top_k: int = 4,
            **kw) -> AutoScheduleResult:
        plan, report = beam_search(
            fn, _default_oracle(oracle, params), beam_width=beam_width,
            rounds=rounds, budget=budget, measure_oracle=measure_oracle,
            measure_top_k=measure_top_k)
        return _result(self.name, plan, report)


@register_strategy
class EvolutionaryStrategy(Strategy):
    """``strategy="evolutionary"``: beam seed + mutation refinement."""

    name = "evolutionary"

    def run(self, fn, *, oracle=None, budget: Optional[int] = None,
            params: Optional[Dict[str, int]] = None,
            generations: int = 3, population: int = 6, seed: int = 0,
            beam_width: int = 4, rounds: int = 2,
            measure_oracle=None, measure_top_k: int = 4,
            **kw) -> AutoScheduleResult:
        plan, report = evolutionary_search(
            fn, _default_oracle(oracle, params), generations=generations,
            population=population, budget=budget, seed=seed,
            beam_width=beam_width, rounds=rounds,
            measure_oracle=measure_oracle, measure_top_k=measure_top_k)
        return _result(self.name, plan, report)
