"""Iteration variables and symbolic size parameters (paper Section III-B).

``Var i(0, N-2)`` in the paper's C++ API becomes ``Var("i", 0, N - 2)``
here: a named iterator with a half-open range ``[lo, hi)``.  Bounds may be
integers or affine expressions over :class:`Param` objects.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.ir.expr import Expr, IterVar, ParamRef, wrap

_fresh_counter = itertools.count()


class Param(ParamRef):
    """A symbolic, run-time-constant size parameter (e.g. ``N``)."""


class Var:
    """An iteration variable, optionally carrying its range.

    A ranged Var (``Var("i", 0, N)``) declares an iteration-domain
    dimension; a bare Var (``Var("i0")``) names a loop level created by a
    scheduling command such as ``tile`` or ``split``.
    """

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: Optional[str] = None, lo=None, hi=None):
        if name is None:
            name = f"v{next(_fresh_counter)}"
        self.name = name
        self.lo = wrap(lo) if lo is not None else None
        self.hi = wrap(hi) if hi is not None else None

    @property
    def has_range(self) -> bool:
        return self.lo is not None and self.hi is not None

    def expr(self) -> IterVar:
        return IterVar(self.name)

    # Vars participate in expressions directly.
    def __add__(self, other):
        return self.expr() + other

    def __radd__(self, other):
        return other + self.expr()

    def __sub__(self, other):
        return self.expr() - other

    def __rsub__(self, other):
        return other - self.expr()

    def __mul__(self, other):
        return self.expr() * other

    def __rmul__(self, other):
        return other * self.expr()

    def __neg__(self):
        return -self.expr()

    def __mod__(self, other):
        return self.expr() % other

    def __floordiv__(self, other):
        return self.expr() // other

    def __lt__(self, other):
        return self.expr() < wrap(other)

    def __le__(self, other):
        return self.expr() <= wrap(other)

    def __gt__(self, other):
        return self.expr() > wrap(other)

    def __ge__(self, other):
        return self.expr() >= wrap(other)

    def eq(self, other):
        return self.expr().eq(other)

    def __repr__(self):
        if self.has_range:
            return f"Var({self.name}, {self.lo!r}, {self.hi!r})"
        return f"Var({self.name})"
