"""The structured event journal: an append-only JSONL record of what
the compile service *did*.

Metrics aggregate and spans time; neither answers "what happened to
request X, in order, across processes".  The journal does: every
producer — the compile pipeline (begin/end, per-tier cache outcomes),
the batch front end (submit/dedup/retry/fallback), the parallel
runtime (worker failure, retry, pool restart), fault injection, and
the autoscheduler search (round/candidate/prune/measure) — appends one
JSON object per line to the file named by ``TIRAMISU_EVENT_LOG``.

Each line carries:

* ``name`` — dotted event name (``compile.begin``, ``batch.retry``, ...);
* ``cat`` — producer category (``compile`` / ``cache`` / ``batch`` /
  ``parallel`` / ``fault`` / ``search``);
* ``wall`` — ``time.time()`` (epoch seconds, for humans and log joins);
* ``mono_ns`` — ``time.perf_counter_ns()`` (the tracer's clock, so
  journal lines interleave correctly with trace spans);
* ``pid`` — the emitting process;
* ``compile_id`` — the correlation id (below), or null;
* ``fields`` — free-form producer payload.

**Correlation.**  Every compile gets a ``compile_id`` (also stored on
its :class:`~repro.driver.trace.CompileReport` and stamped onto its
tracer spans).  The id is *ambient*: :func:`compile_context` installs
it in a :class:`contextvars.ContextVar`, and every ``emit`` without an
explicit id picks it up — so the batch front end can issue the id at
``submit`` time and the pipeline, cache tiers, and fault paths that
serve that request all journal under it.  One
``grep <id> events.jsonl`` reconstructs the request's full story.

**Process safety.**  The journal file is opened ``O_APPEND`` and every
event is a single ``os.write`` of one complete line, which POSIX
appends atomically — concurrent writers (batch pool workers inherit
the environment and append to the same file) interleave whole lines,
never partial ones.

Activation mirrors the tracer: set ``TIRAMISU_EVENT_LOG=events.jsonl``
in the environment, or pin programmatically with
:func:`configure_event_log`.  With neither, ``emit`` is a cheap no-op.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, List, Optional

EVENT_LOG_ENV = "TIRAMISU_EVENT_LOG"

#: Event categories used by the built-in producers.
EVT_COMPILE = "compile"
EVT_CACHE = "cache"
EVT_BATCH = "batch"
EVT_PARALLEL = "parallel"
EVT_FAULT = "fault"
EVT_SEARCH = "search"
EVT_RESILIENCE = "resilience"


# -- correlation --------------------------------------------------------------

_COMPILE_ID: "contextvars.ContextVar[Optional[str]]" = \
    contextvars.ContextVar("tiramisu_compile_id", default=None)


def new_compile_id() -> str:
    """A fresh correlation id: short enough to grep, unique across
    processes (uuid4-derived)."""
    return uuid.uuid4().hex[:16]


def current_compile_id() -> Optional[str]:
    """The ambient correlation id installed by :func:`compile_context`,
    or None."""
    return _COMPILE_ID.get()


@contextmanager
def compile_context(compile_id: Optional[str]):
    """Install ``compile_id`` as the ambient correlation id for the
    block.  Every ``emit`` without an explicit id inherits it, as does
    the compile pipeline's ``_begin`` — which is how a batch job's
    submit-time id ends up on the compile's report, spans and events."""
    token = _COMPILE_ID.set(compile_id)
    try:
        yield compile_id
    finally:
        _COMPILE_ID.reset(token)


# -- the journal --------------------------------------------------------------

class EventJournal:
    """One append-only JSONL destination.

    Keeps a single ``O_APPEND`` file descriptor; every event is one
    ``write`` call of one complete line, so concurrent processes
    appending to the same path never interleave partial records."""

    def __init__(self, path: str):
        self.path = str(path)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    def _ensure_fd(self) -> Optional[int]:
        if self._fd is None:
            try:
                self._fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            except OSError:
                return None
        return self._fd

    def write(self, record: Dict[str, object]) -> bool:
        """Serialize ``record`` and append it as one line; returns False
        when the destination is unusable (telemetry must never take the
        compile down)."""
        try:
            line = json.dumps(record, default=repr,
                              separators=(",", ":")) + "\n"
        except (TypeError, ValueError):
            return False
        data = line.encode("utf-8", errors="replace")
        with self._lock:
            fd = self._ensure_fd()
            if fd is None:
                return False
            try:
                os.write(fd, data)
            except OSError:
                return False
        return True

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


# -- process-wide activation --------------------------------------------------

_configured_path: Optional[str] = None
_explicit = False
_journal: Optional[EventJournal] = None


def configure_event_log(path: Optional[str]) -> Optional[EventJournal]:
    """Programmatically pin the journal to ``path`` (``None`` disables
    it regardless of the environment); returns the active journal."""
    global _configured_path, _explicit, _journal
    if _journal is not None:
        _journal.close()
    _configured_path = str(path) if path is not None else None
    _explicit = True
    _journal = None
    return _active_journal()


def reset_event_log_configuration() -> None:
    """Forget any :func:`configure_event_log` override; the
    ``TIRAMISU_EVENT_LOG`` environment variable decides again."""
    global _explicit, _configured_path, _journal
    if _journal is not None:
        _journal.close()
    _explicit = False
    _configured_path = None
    _journal = None


def event_log_path() -> Optional[str]:
    """The resolved journal destination, or None when disabled."""
    if _explicit:
        return _configured_path
    path = os.environ.get(EVENT_LOG_ENV, "").strip()
    return path or None


def events_enabled() -> bool:
    return event_log_path() is not None


def _active_journal() -> Optional[EventJournal]:
    """The journal for the currently-resolved path; re-resolves the
    environment on every call so tests (and long-lived services) can
    repoint the log without restarting."""
    global _journal
    path = event_log_path()
    if path is None:
        if _journal is not None:
            _journal.close()
            _journal = None
        return None
    if _journal is None or _journal.path != path:
        if _journal is not None:
            _journal.close()
        _journal = EventJournal(path)
    return _journal


def emit(name: str, cat: str, compile_id: Optional[str] = None,
         **fields) -> bool:
    """Append one event; a no-op (returning False) when no journal is
    active.  ``compile_id=None`` inherits the ambient
    :func:`compile_context` id."""
    journal = _active_journal()
    if journal is None:
        return False
    if compile_id is None:
        compile_id = _COMPILE_ID.get()
    return journal.write({
        "name": name,
        "cat": cat,
        "wall": time.time(),
        "mono_ns": time.perf_counter_ns(),
        "pid": os.getpid(),
        "compile_id": compile_id,
        "fields": fields,
    })


def read_journal(path: str):
    """Parse a journal file into ``(records, torn_tail)``.

    The append discipline (one ``O_APPEND`` write per complete line)
    means the only damage a crash can leave is a *torn tail*: a final
    line cut short, with no trailing newline.  Such a fragment is
    returned as ``torn_tail`` (the raw text, or None) instead of
    failing the whole read — every complete record before it is still
    served.  An *interior* malformed line can never come from a crash
    and still raises ValueError naming it: that is a real bug.
    """
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    lines = text.split("\n")
    # A file ending in "\n" splits to a trailing "" — complete file.
    # Anything else in the final slot is an unterminated fragment.
    fragment = lines.pop() if lines else ""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(
                f"{path}:{lineno}: malformed journal line: {err}"
                ) from None
        if not isinstance(record, dict):
            raise ValueError(
                f"{path}:{lineno}: journal line is not an object")
        out.append(record)
    torn: Optional[str] = None
    if fragment.strip():
        # The write was cut mid-record; if what landed happens to
        # parse, the only thing missing was the newline — keep it.
        try:
            record = json.loads(fragment)
        except json.JSONDecodeError:
            torn = fragment
        else:
            if isinstance(record, dict):
                out.append(record)
            else:
                torn = fragment
    return out, torn


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse a journal file back into event dicts.

    A torn trailing line (a crash mid-append) is tolerated: every
    complete record is returned and the fragment is dropped — use
    :func:`read_journal` to see the torn tail itself, or
    :func:`repair_journal` to truncate it away.  Interior malformed
    lines still raise ValueError naming the line: the journal's append
    discipline means those are real bugs, not expected races."""
    records, _ = read_journal(path)
    return records


def repair_journal(path: str) -> int:
    """Truncate a torn trailing record (anything after the last
    newline) off the journal; returns the number of bytes removed (0
    when the file was already clean or absent)."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return 0
    if not data or data.endswith(b"\n"):
        return 0
    cut = data.rfind(b"\n") + 1  # 0 when no newline at all: empty file
    removed = len(data) - cut
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return removed
