"""The image-processing benchmarks of paper Section VI-B.

edgeDetector, cvtColor, conv2D, warpAffine, gaussian, nb, ticket #2373,
plus the running blur example of Figures 2/3.  Each builder returns a
fresh :class:`~repro.kernels.base.KernelBundle` (algorithm + NumPy
reference); schedule_* helpers apply the paper's schedules.

Paper input: a 2112x3520 RGB image (``paper_params``); tests use small
sizes (``test_params``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.ir import cast, clamp, maximum, minimum, select
from repro.ir import types as T
from repro.ir.expr import Call, Const

from .base import KernelBundle

PAPER_IMAGE = {"N": 2112, "M": 3520}
TEST_IMAGE = {"N": 26, "M": 22}


def _image_input(name: str, N, M, channels: int = 3, dtype=T.float32):
    dims = [Var(f"_{name}x", 0, N), Var(f"_{name}y", 0, M)]
    if channels:
        dims.append(Var(f"_{name}c", 0, channels))
    return Input(name, dims, dtype=dtype)


def _rand_image(params, rng, channels: int = 3):
    shape = (params["N"], params["M"]) + ((channels,) if channels else ())
    return (rng.random(shape) * 255).astype(np.float32)


# -- blur (Figures 2 / 3) ----------------------------------------------------


def build_blur() -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("blur", params=[N, M])
    with f:
        inp = _image_input("img", N, M)
        iw, jw, cw = Var("iw", 0, N - 2), Var("jw", 0, M - 2), Var("cw", 0, 3)
        i, j, c = Var("i", 0, N - 4), Var("j", 0, M - 2), Var("c", 0, 3)
        bx = Computation("bx", [iw, jw, cw], None)
        bx.set_expression((inp(iw, jw, cw) + inp(iw, jw + 1, cw)
                           + inp(iw, jw + 2, cw)) / 3)
        by = Computation("by", [i, j, c], None)
        by.set_expression((bx(i, j, c) + bx(i + 1, j, c)
                           + bx(i + 2, j, c)) / 3)

    def reference(inputs, params):
        img = inputs["img"]
        n, m = params["N"], params["M"]
        bx_ = (img[:n-2, :m-2] + img[:n-2, 1:m-1] + img[:n-2, 2:m]) / 3
        by_ = (bx_[:n-4] + bx_[1:n-3] + bx_[2:n-2]) / 3
        return {"by": by_}

    return KernelBundle(
        name="blur", function=f, computations={"bx": bx, "by": by},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))


def schedule_blur_cpu(bundle: KernelBundle, tile: int = 32) -> None:
    """Figure 3(a): tile + parallelize + compute_at (overlapped tiling)."""
    bx, by = bundle.computations["bx"], bundle.computations["by"]
    by.tile("i", "j", tile, tile, "i0", "j0", "i1", "j1")
    by.parallelize("i0")
    bx.compute_at(by, "j0")


# -- cvtColor ------------------------------------------------------------------


def build_cvtcolor() -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("cvtcolor", params=[N, M])
    with f:
        inp = _image_input("img", N, M)
        i, j = Var("i", 0, N), Var("j", 0, M)
        gray = Computation("gray", [i, j], None)
        gray.set_expression(inp(i, j, 0) * 0.299 + inp(i, j, 1) * 0.587
                            + inp(i, j, 2) * 0.114)

    def reference(inputs, params):
        img = inputs["img"]
        return {"gray": (img[..., 0] * 0.299 + img[..., 1] * 0.587
                         + img[..., 2] * 0.114).astype(np.float32)}

    return KernelBundle(
        name="cvtColor", function=f, computations={"gray": gray},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))


# -- conv2D (clamped 3x3 convolution) --------------------------------------------


def build_conv2d() -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("conv2d", params=[N, M])
    with f:
        inp = _image_input("img", N, M)
        w = Input("w", [Var("_wa", 0, 3), Var("_wb", 0, 3)])
        i, j, c = Var("i", 0, N), Var("j", 0, M), Var("c", 0, 3)
        terms = None
        for a in range(3):
            for b in range(3):
                term = inp(clamp(i + a - 1, 0, N - 1),
                           clamp(j + b - 1, 0, M - 1), c) * w(a, b)
                terms = term if terms is None else terms + term
        out = Computation("conv", [i, j, c], terms)

    def reference(inputs, params):
        img, w_ = inputs["img"], inputs["w"]
        n, m = params["N"], params["M"]
        res = np.zeros_like(img)
        ii = np.arange(n)[:, None, None]
        jj = np.arange(m)[None, :, None]
        for a in range(3):
            for b in range(3):
                src = img[np.clip(np.arange(n) + a - 1, 0, n - 1)][
                    :, np.clip(np.arange(m) + b - 1, 0, m - 1)]
                res += src * w_[a, b]
        return {"conv": res}

    def make_inputs(p, rng):
        return {"img": _rand_image(p, rng),
                "w": rng.random((3, 3)).astype(np.float32)}

    return KernelBundle(
        name="conv2D", function=f, computations={"conv": out},
        make_inputs=make_inputs, reference=reference,
        paper_params=dict(PAPER_IMAGE), test_params=dict(TEST_IMAGE))


# -- warpAffine (bilinear affine warp, clamped) ------------------------------------


def build_warp_affine(a00=0.1, a01=0.1, a10=0.1, a11=0.1) -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("warp_affine", params=[N, M])
    with f:
        inp = _image_input("img", N, M, channels=0)
        i, j = Var("i", 0, N), Var("j", 0, M)
        o_r = a00 * i + a01 * j
        o_c = a10 * i + a11 * j
        r = Call("floor", [o_r])
        c_ = Call("floor", [o_c])
        coeff_r = o_r - r
        coeff_c = o_c - c_
        r_int = cast(T.int32, r)
        c_int = cast(T.int32, c_)

        def sample(dr, dc):
            return inp(clamp(r_int + dr, 0, N - 1),
                       clamp(c_int + dc, 0, M - 1))

        A00, A01 = sample(0, 0), sample(0, 1)
        A10, A11 = sample(1, 0), sample(1, 1)
        expr = ((1 - coeff_r) * ((1 - coeff_c) * A00 + coeff_c * A01)
                + coeff_r * ((1 - coeff_c) * A10 + coeff_c * A11))
        out = Computation("warp", [i, j], expr)

    def reference(inputs, params):
        img = inputs["img"]
        n, m = params["N"], params["M"]
        ii, jj = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
        o_r = a00 * ii + a01 * jj
        o_c = a10 * ii + a11 * jj
        r = np.floor(o_r)
        c = np.floor(o_c)
        fr, fc = o_r - r, o_c - c
        r = r.astype(np.int64)
        c = c.astype(np.int64)

        def s(dr, dc):
            return img[np.clip(r + dr, 0, n - 1), np.clip(c + dc, 0, m - 1)]

        res = ((1 - fr) * ((1 - fc) * s(0, 0) + fc * s(0, 1))
               + fr * ((1 - fc) * s(1, 0) + fc * s(1, 1)))
        return {"warp": res.astype(np.float32)}

    return KernelBundle(
        name="warpAffine", function=f, computations={"warp": out},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng, channels=0)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))


# -- gaussian (separable 5-tap, clamped) --------------------------------------------


GAUSS = [0.0625, 0.25, 0.375, 0.25, 0.0625]


def build_gaussian() -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("gaussian", params=[N, M])
    with f:
        inp = _image_input("img", N, M)
        ix, jx, cx = Var("ix", 0, N), Var("jx", 0, M), Var("cx", 0, 3)
        i, j, c = Var("i", 0, N), Var("j", 0, M), Var("c", 0, 3)
        gx_expr = None
        for k in range(5):
            t = inp(ix, clamp(jx + k - 2, 0, M - 1), cx) * GAUSS[k]
            gx_expr = t if gx_expr is None else gx_expr + t
        gx = Computation("gx", [ix, jx, cx], gx_expr)
        gy_expr = None
        for k in range(5):
            t = gx(clamp(i + k - 2, 0, N - 1), j, c) * GAUSS[k]
            gy_expr = t if gy_expr is None else gy_expr + t
        gy = Computation("gy", [i, j, c], gy_expr)

    def reference(inputs, params):
        img = inputs["img"]
        n, m = params["N"], params["M"]
        gx_ = np.zeros_like(img)
        for k in range(5):
            gx_ += img[:, np.clip(np.arange(m) + k - 2, 0, m - 1)] * GAUSS[k]
        gy_ = np.zeros_like(img)
        for k in range(5):
            gy_ += gx_[np.clip(np.arange(n) + k - 2, 0, n - 1)] * GAUSS[k]
        return {"gy": gy_}

    return KernelBundle(
        name="gaussian", function=f, computations={"gx": gx, "gy": gy},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))


# -- nb: 4 stages updating one buffer (the fusion benchmark) --------------------------


def build_nb() -> KernelBundle:
    """Four stages over one output buffer: negative then brighten then
    two contrast tweaks.  Tiramisu fuses all four (legal: same-element
    updates); Halide cannot fuse loops that update the same buffer."""
    N, M = Param("N"), Param("M")
    f = Function("nb", params=[N, M])
    with f:
        inp = _image_input("img", N, M)
        buf = Buffer("out", [N, M, 3])
        comps = []
        exprs = [
            lambda prev, args: 255.0 - inp(*args),
            lambda prev, args: minimum(prev(*args) * 1.5, 255.0),
            lambda prev, args: prev(*args) - 10.0,
            lambda prev, args: maximum(prev(*args), 0.0),
        ]
        prev = None
        for s, make in enumerate(exprs):
            i, j, c = (Var(f"i{s}", 0, N), Var(f"j{s}", 0, M),
                       Var(f"c{s}", 0, 3))
            comp = Computation(f"s{s}", [i, j, c], None)
            comp.set_expression(make(prev, (i, j, c)))
            comp.store_in(buf, [i, j, c])
            if prev is not None:
                comp.after(prev, None)
            prev = comp
            comps.append(comp)

    def reference(inputs, params):
        img = inputs["img"]
        out = 255.0 - img
        out = np.minimum(out * 1.5, 255.0)
        out = out - 10.0
        out = np.maximum(out, 0.0)
        return {"out": out.astype(np.float32)}

    return KernelBundle(
        name="nb", function=f,
        computations={c.name: c for c in comps},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))


def schedule_nb_fused(bundle: KernelBundle) -> None:
    """Tiramisu's fusion (legality proven by dependence analysis): all
    four stages in one loop nest — the 3.77x claim of Section VI-B."""
    comps = [bundle.computations[f"s{s}"] for s in range(4)]
    for prev, nxt in zip(comps, comps[1:]):
        nxt.after(prev, "c" + prev.name[1])
    bundle.function.check_legality()


# -- edgeDetector (cyclic dataflow; inexpressible in Halide) ----------------------------


def build_edge_detector() -> KernelBundle:
    N, M = Param("N"), Param("M")
    f = Function("edge", params=[N, M])
    with f:
        img = _image_input("img", N, M, channels=0)
        ir, jr = Var("ir", 1, N - 1), Var("jr", 1, M - 1)
        i, j = Var("i", 1, N - 2), Var("j", 2, M - 1)
        ring = Computation("ring", [ir, jr], None)
        ring.set_expression(
            (img(ir - 1, jr - 1) + img(ir - 1, jr) + img(ir - 1, jr + 1)
             + img(ir, jr - 1) + img(ir, jr + 1)
             + img(ir + 1, jr - 1) + img(ir + 1, jr) + img(ir + 1, jr + 1))
            / 8)
        roberts = Computation("roberts", [i, j], None)
        from repro.ir import absolute
        roberts.set_expression(
            absolute(ring(i, j) - ring(i + 1, j - 1))
            + absolute(ring(i + 1, j) - ring(i, j - 1)))
        # The cyclic part: the result is written back into the image
        # buffer (Img is written by roberts and read by ring).
        roberts.store_in(img.get_buffer(), [i, j])
        roberts.after(ring, None)
        from repro.core.buffer import ArgKind
        img.get_buffer().kind = ArgKind.INOUT

    def reference(inputs, params):
        img = inputs["img"].astype(np.float32).copy()
        n, m = params["N"], params["M"]
        ring_ = np.zeros((n, m), np.float32)
        ring_[1:n-1, 1:m-1] = (
            img[0:n-2, 0:m-2] + img[0:n-2, 1:m-1] + img[0:n-2, 2:m]
            + img[1:n-1, 0:m-2] + img[1:n-1, 2:m]
            + img[2:n, 0:m-2] + img[2:n, 1:m-1] + img[2:n, 2:m]) / 8
        out = img.copy()
        for a in range(1, n - 2):
            for b in range(2, m - 1):
                out[a, b] = (abs(ring_[a, b] - ring_[a + 1, b - 1])
                             + abs(ring_[a + 1, b] - ring_[a, b - 1]))
        return {"img": out}

    bundle = KernelBundle(
        name="edgeDetector", function=f,
        computations={"ring": ring, "roberts": roberts},
        make_inputs=lambda p, rng: {"img": _rand_image(p, rng, channels=0)},
        reference=reference, paper_params=dict(PAPER_IMAGE),
        test_params=dict(TEST_IMAGE))
    return bundle


# -- ticket #2373 (triangular iteration space) --------------------------------------


def build_ticket2373() -> KernelBundle:
    """The Halide bug: assign A[x] for x >= r — a non-rectangular space
    that interval-based bounds inference over-approximates."""
    N, R = Param("N"), Param("R")
    f = Function("ticket2373", params=[N, R])
    with f:
        r = Var("r", 0, R)
        x = Var("x", r.expr(), N)      # x ranges r..N-1: triangular
        a = Computation("a", [r, x], None)
        a.set_expression(1.0 * (x + r))
        a.store_in(Buffer("A", [N]), [x])

    def reference(inputs, params):
        n, rmax = params["N"], params["R"]
        out = np.zeros(n, np.float32)
        for rr in range(rmax):
            for xx in range(rr, n):
                out[xx] = float(xx + rr)
        return {"A": out}

    return KernelBundle(
        name="ticket2373", function=f, computations={"a": a},
        make_inputs=lambda p, rng: {},
        reference=reference,
        paper_params={"N": 4096, "R": 4096},
        test_params={"N": 19, "R": 13})
