#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figures 2 and 3a).

Builds the two-stage blur as a pure algorithm, applies the multicore
schedule from Figure 3(a) — tiling, parallelization, and compute_at
(overlapped tiling) — compiles it, runs it, and checks the result
against NumPy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Computation, Function, Input, Param, Var

# -- Layer I: the pure algorithm (paper Figure 2) ---------------------------

N, M = Param("N"), Param("M")

with Function("blur", params=[N, M]) as blur:
    # Input image (RGB).
    img = Input("img", [Var("x", 0, N), Var("y", 0, M), Var("z", 0, 3)])

    # bx: horizontal blur; by: vertical blur of bx.
    iw, jw, cw = Var("iw", 0, N - 2), Var("jw", 0, M - 2), Var("cw", 0, 3)
    i, j, c = Var("i", 0, N - 4), Var("j", 0, M - 2), Var("c", 0, 3)

    bx = Computation("bx", [iw, jw, cw], None)
    bx.set_expression((img(iw, jw, cw) + img(iw, jw + 1, cw)
                       + img(iw, jw + 2, cw)) / 3)

    by = Computation("by", [i, j, c], None)
    by.set_expression((bx(i, j, c) + bx(i + 1, j, c)
                       + bx(i + 2, j, c)) / 3)

# -- the schedule (paper Figure 3a) -----------------------------------------

by.tile("i", "j", 32, 32, "i0", "j0", "i1", "j1")
by.parallelize("i0")
bx.compute_at(by, "j0")     # overlapped tiling: bx tiles with halo

# Dependence analysis proves this schedule legal (Section II-c).
blur.check_legality()

# -- compile and run ----------------------------------------------------------

kernel = blur.compile("cpu")
print("generated code:\n")
print(kernel.source)

n, m = 128, 96
rng = np.random.default_rng(0)
image = rng.random((n, m, 3)).astype(np.float32)
out = kernel(img=image, N=n, M=m)["by"]

bx_ref = (image[:n-2, :m-2] + image[:n-2, 1:m-1] + image[:n-2, 2:m]) / 3
by_ref = (bx_ref[:n-4] + bx_ref[1:n-3] + bx_ref[2:n-2]) / 3
assert np.allclose(out, by_ref, atol=1e-5)
print(f"OK: blur({n}x{m}) matches the NumPy reference "
      f"(max err {abs(out - by_ref).max():.2e})")
