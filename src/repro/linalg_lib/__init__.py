"""Vendor-library stand-ins: Intel MKL and NVIDIA cuBLAS (DESIGN.md).

Two faces, used by different parts of the harness:

- *executable*: NumPy-BLAS-backed kernels (``sgemm``, ``conv``) used by
  correctness tests and wall-clock benchmarks as the "hand-tuned
  library";
- *modeled*: closed-form times on the paper's machines, expressed as a
  fraction of machine peak.  The efficiency constants are the calibration
  points of the reproduction (documented in EXPERIMENTS.md): MKL's sgemm
  runs at a large fraction of peak; its generic convolution pays for not
  specializing on the filter size (the effect Section VI-A credits for
  Tiramisu's win on Conv/VGG).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.machine.params import (DEFAULT_CPU, DEFAULT_GPU, CpuMachine,
                                  GpuMachine)

# Calibrated efficiency constants (fraction of machine peak flops).
MKL_SGEMM_EFFICIENCY = 0.35
MKL_CONV_EFFICIENCY = 0.18      # generic filter loop, no specialization
MKL_VGG_EFFICIENCY = 0.13       # two unfused convolutions (extra traffic)
CUBLAS_SGEMM_EFFICIENCY = 0.45


def _cpu_peak_flops(machine: CpuMachine) -> float:
    return (machine.cores * machine.frequency_ghz * 1e9
            * machine.vector_width_f32 * machine.flops_per_cycle_scalar)


def _gpu_peak_flops(machine: GpuMachine) -> float:
    return machine.cuda_cores * machine.frequency_ghz * 1e9 * 2.0


# -- executable kernels -------------------------------------------------------


def sgemm(alpha: float, a: np.ndarray, b: np.ndarray, beta: float,
          c: np.ndarray) -> np.ndarray:
    """C = alpha*A@B + beta*C, in place (the MKL cblas_sgemm contract)."""
    c *= beta
    c += alpha * (a @ b)
    return c


def conv2d_nchw(img: np.ndarray, w: np.ndarray,
                bias: np.ndarray) -> np.ndarray:
    """Direct valid convolution via im2col + BLAS (MKL-DNN style)."""
    bsz, fi, n, m = img.shape
    fo, _, kk, _ = w.shape
    out_h, out_w = n - kk + 1, m - kk + 1
    cols = np.empty((bsz, fi * kk * kk, out_h * out_w), img.dtype)
    idx = 0
    for c in range(fi):
        for ky in range(kk):
            for kx in range(kk):
                cols[:, idx, :] = img[:, c, ky:ky + out_h,
                                      kx:kx + out_w].reshape(bsz, -1)
                idx += 1
    wmat = w.reshape(fo, fi * kk * kk)
    out = np.einsum("ok,bkp->bop", wmat, cols)
    return out.reshape(bsz, fo, out_h, out_w) + bias[None, :, None, None]


# -- modeled times ----------------------------------------------------------------


def mkl_sgemm_time(n: int, m: int, k: int,
                   machine: CpuMachine = DEFAULT_CPU) -> float:
    flops = 2.0 * n * m * k
    return flops / (_cpu_peak_flops(machine) * MKL_SGEMM_EFFICIENCY)


def mkl_conv_time(batch: int, f_in: int, f_out: int, n: int, m: int,
                  ksize: int = 3,
                  machine: CpuMachine = DEFAULT_CPU) -> float:
    flops = 2.0 * batch * f_in * f_out * n * m * ksize * ksize
    return flops / (_cpu_peak_flops(machine) * MKL_CONV_EFFICIENCY)


def mkl_vgg_time(batch: int, f: int, n: int, m: int,
                 machine: CpuMachine = DEFAULT_CPU) -> float:
    flops = 2.0 * 2 * batch * f * f * n * m * 9
    return flops / (_cpu_peak_flops(machine) * MKL_VGG_EFFICIENCY)


def cublas_sgemm_time(n: int, m: int, k: int,
                      machine: GpuMachine = DEFAULT_GPU) -> float:
    flops = 2.0 * n * m * k
    compute = flops / (_gpu_peak_flops(machine) * CUBLAS_SGEMM_EFFICIENCY)
    bytes_moved = 4.0 * (n * k + k * m + 2 * n * m)
    transfer = (bytes_moved / (machine.pcie_bandwidth_gbs * 1e9)
                + 2 * machine.pcie_latency_us * 1e-6)
    return compute + transfer
