"""Tests for sampling and lexicographic extrema."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl import lexmax, lexmin, parse_set, points, sample


class TestLexmin:
    def test_triangle(self):
        s = parse_set("{ [i,j] : 0 <= i < 5 and 0 <= j <= i }").pieces[0]
        assert lexmin(s) == (0, 0)
        assert lexmax(s) == (4, 4)

    def test_negative_region(self):
        s = parse_set("{ [i] : -7 <= i <= -3 }").pieces[0]
        assert lexmin(s) == (-7,)
        assert lexmax(s) == (-3,)

    def test_strided(self):
        s = parse_set("{ [i] : exists e : i = 4e + 3 "
                      "and 0 <= i < 30 }").pieces[0]
        assert lexmin(s) == (3,)
        assert lexmax(s) == (27,)

    def test_empty_returns_none(self):
        s = parse_set("{ [i] : i > 5 and i < 3 }").pieces[0]
        assert lexmin(s) is None
        assert sample(s) is None

    def test_parametric_with_values(self):
        s = parse_set("[N] -> { [i,j] : 0 <= i < N and i <= j < N }"
                      ).pieces[0]
        assert lexmin(s, {"N": 4}) == (0, 0)
        assert lexmax(s, {"N": 4}) == (3, 3)

    def test_parametric_without_values_raises(self):
        s = parse_set("[N] -> { [i] : 0 <= i < N }").pieces[0]
        with pytest.raises(ValueError):
            lexmin(s)

    def test_unbounded_raises(self):
        s = parse_set("{ [i] : i >= 0 }").pieces[0]
        with pytest.raises(ValueError):
            lexmax(s)

    @given(st.integers(-5, 5), st.integers(0, 6), st.integers(1, 4),
           st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_matches_enumeration(self, lo, span, stride, residue):
        s = parse_set(
            f"{{ [i] : {lo} <= i <= {lo + span} and "
            f"exists e : i = {stride}e + {residue} }}").pieces[0]
        pts = sorted(points(s))
        if not pts:
            assert lexmin(s) is None
        else:
            assert lexmin(s) == pts[0]
            assert lexmax(s) == pts[-1]


class TestSample:
    def test_sample_in_set(self):
        s = parse_set("{ [i,j] : 3 <= i < 6 and i < j < 9 }").pieces[0]
        pt = sample(s)
        assert s.contains_point(list(pt))

    def test_sample_unbounded(self):
        s = parse_set("{ [i] : i >= -100 }").pieces[0]
        pt = sample(s)
        assert pt is not None and pt[0] >= -100

    def test_sample_prefers_small_magnitude(self):
        s = parse_set("{ [i] : -50 <= i <= 50 }").pieces[0]
        assert sample(s) == (0,)


class TestDependenceDistances:
    def test_stencil_distances(self):
        from repro import Buffer, Computation, Function, Var
        from repro.core.deps import (compute_dependences,
                                     dependence_distance)
        f = Function("f")
        with f:
            i, j = Var("i", 1, 9), Var("j", 1, 9)
            buf = Buffer("g", [10, 10])
            c = Computation("c", [i, j], None)
            c.set_expression(c(i - 1, j) + c(i, j - 1))
            c.store_in(buf, [i, j])
        deps = [d for d in compute_dependences(f) if d.kind == "flow"]
        dists = sorted(dependence_distance(d) for d in deps)
        assert dists == [(0, 1), (1, 0)]

    def test_non_uniform_returns_none(self):
        from repro import Buffer, Computation, Function, Var
        from repro.core.deps import (compute_dependences,
                                     dependence_distance)
        f = Function("f")
        with f:
            i = Var("i", 1, 9)
            buf = Buffer("g", [20])
            c = Computation("c", [i], None)
            c.set_expression(c(i - 1) + 1.0)
            c.store_in(buf, [i * 2])   # non-uniform through the layout
        deps = [d for d in compute_dependences(f) if d.kind == "flow"]
        # distance through doubled storage: src 2i vs read 2(i-1): still
        # uniform in iteration space; craft non-uniform via triangular
        # consumer instead.
        f2 = Function("f2")
        from repro import Input
        with f2:
            iw = Var("iw", 0, 10)
            i2 = Var("i2", 1, 5)
            a = Computation("a", [iw], 1.0)
            b = Computation("b", [i2], None)
            b.set_expression(a(i2 * 2))
        deps2 = [d for d in compute_dependences(f2) if d.kind == "flow"]
        assert dependence_distance(deps2[0]) is None
