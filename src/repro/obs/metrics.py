"""A process-safe metrics registry: counters, gauges, histograms.

The registry lives in the parent (compiling) process and is guarded by
one lock, so any thread may record.  Worker processes never touch it
directly — measurements taken inside a worker (chunk wall time, chunk
sizes) ride back to the parent with the chunk result and are recorded
there (see :meth:`repro.backends.parallel.ParallelRuntime.run`), which
is what makes the registry safe under the process pool without shared
state.

The parallel backend feeds, per dispatched region: a chunk-seconds and
chunk-iterations histogram (worker imbalance = the max/min spread), and
shared-memory staging costs (copy-in / copy-back seconds and bytes).

Fault tolerance (docs/robustness.md) adds failure-path counters:
``parallel.worker_failures`` / ``parallel.retries`` /
``parallel.pool_restarts`` / ``parallel.chunk_timeouts`` /
``parallel.sequential_fallbacks`` from the pool runtime;
``dist.rank_failures`` / ``dist.rank_failure_propagations`` /
``dist.deadlocks`` / ``dist.recv_timeouts`` / ``dist.hung_ranks`` /
``dist.messages_dropped`` / ``dist.messages_corrupted`` from the
distributed simulator; and ``cache.corruption_misses`` from the
digest-verifying compile cache.

The polyhedral layer (:mod:`repro.isl.cache`, docs/ir_layers.md) counts
its memo caches and Omega-test short-circuits here too:
``isl.empty_cache.hits`` / ``.misses`` / ``.size`` (gauge),
``isl.compose_cache.hits`` / ``.misses`` / ``.size``, and
``isl.empty.prefilter_trivial`` / ``prefilter_eq_clash`` /
``prefilter_bounds`` / ``rational_fastpath``.

The compile-as-a-service layer (docs/compiler_driver.md) counts per
cache tier and per batch: ``compile_cache.memory.{hit,miss,evict,
corrupt}`` from the in-process kernel registry,
``compile_cache.disk.{hit,miss,evict,corrupt}`` from the durable
on-disk artifact tier, and ``compile_batch.{submitted,deduplicated,
worker_compiles,inline_compiles,worker_failures,retries,pool_restarts,
fallbacks}`` from the batch front end.

The autoscheduler (docs/autoscheduler.md) accounts for its search here:
``autosched.candidates`` (plans enumerated, legal or not),
``autosched.pruned_illegal`` (killed by the legality checks before any
oracle sees them), ``autosched.beam_kept`` (survivors carried across
beam rounds / evolutionary generations), and ``autosched.measured``
(finalist plans actually compiled and timed by the measured oracle).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


@dataclass
class Gauge:
    """A last-written value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of observations (count/total/min/max/mean)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def spread(self) -> float:
        """max/min ratio — the worker-imbalance number (1.0 = balanced)."""
        if not self.count or self.min <= 0:
            return 1.0
        return self.max / self.min

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean}


class MetricsRegistry:
    """Named metrics behind one lock; create-on-first-use accessors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time copy of every metric as plain values."""
        with self._lock:
            out: Dict[str, object] = {}
            for name, c in self._counters.items():
                out[name] = c.value
            for name, g in self._gauges.items():
                out[name] = g.value
            for name, h in self._histograms.items():
                out[name] = h.summary()
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry the parallel backend feeds.
metrics = MetricsRegistry()
