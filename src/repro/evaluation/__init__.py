"""Evaluation harness: figure regeneration and model calibration."""

from .autosched_compare import (AutoVsHandRow, auto_vs_hand_table,
                                compare_kernel, render_auto_vs_hand,
                                time_kernel)
from .calibration import (CalibrationFit, CalibrationRow,
                          calibrate_kernel, calibration_table,
                          fit_time_scale, fitted_model_oracle,
                          render_calibration)

__all__ = [
    "AutoVsHandRow",
    "CalibrationFit",
    "CalibrationRow",
    "auto_vs_hand_table",
    "calibrate_kernel",
    "calibration_table",
    "compare_kernel",
    "fit_time_scale",
    "fitted_model_oracle",
    "render_auto_vs_hand",
    "render_calibration",
    "time_kernel",
]
