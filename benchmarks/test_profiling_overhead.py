"""Observability overhead: profiling off must cost nothing.

``profile=False`` (the default) is required to emit byte-identical
source to a pre-observability build — the guarantee is structural, and
this harness checks it both ways: the emitted artifacts are identical,
and best-of-N wall clock of the two compiled kernels stays within 5%.
A second smoke test exports one profiled, traced run and checks the
Chrome-trace JSON holds compile-stage, loop-nest, parallel, and worker
spans on one timeline.
"""

import json
import time

import numpy as np

from conftest import print_table
from repro.kernels.linalg import build_sgemm
from repro.obs import (CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER,
                       get_tracer, write_trace_file)

PARAMS = {"N": 96, "M": 96, "K": 96}
REPEATS = 7


def _best_of(kernel, inputs, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        fresh = {k: np.copy(v) for k, v in inputs.items()}
        t0 = time.perf_counter()
        kernel(**fresh, **PARAMS)
        best = min(best, time.perf_counter() - t0)
    return best


class TestProfileOffOverhead:
    def test_profile_false_artifacts_identical(self):
        base = build_sgemm()
        k_base = base.function.compile("cpu")
        off = build_sgemm()
        # cache=False so the source is emitted independently rather
        # than served from the registry entry the baseline created
        k_off = off.function.compile("cpu", profile=False, cache=False)
        assert k_off.source == k_base.source
        assert k_off.report.fingerprint == k_base.report.fingerprint

    def test_profile_false_within_5_percent(self):
        base = build_sgemm()
        k_base = base.function.compile("cpu")
        off = build_sgemm()
        k_off = off.function.compile("cpu", profile=False, cache=False)
        inputs = base.make_inputs(PARAMS, np.random.default_rng(0))
        _best_of(k_base, inputs, repeats=2)   # warm both code paths
        _best_of(k_off, inputs, repeats=2)
        # Interleave the two measurements so host-load drift across the
        # benchmark suite hits both kernels equally; best-of cancels the
        # remaining spikes (the kernels are byte-identical, so the true
        # ratio is 1.0 by construction).
        t_base = t_off = float("inf")
        for _ in range(REPEATS):
            t_base = min(t_base, _best_of(k_base, inputs, repeats=1))
            t_off = min(t_off, _best_of(k_off, inputs, repeats=1))
        ratio = t_off / t_base
        print_table("profiling overhead (off)", {
            "baseline best (ms)": f"{t_base * 1e3:.3f}",
            "profile=False best (ms)": f"{t_off * 1e3:.3f}",
            "ratio": f"{ratio:.3f}",
        })
        assert ratio <= 1.05, (t_base, t_off)


class TestTraceExportSmoke:
    def test_trace_json_holds_all_span_kinds(self, tmp_path):
        tracer = get_tracer()
        tracer.clear()
        tracer.set_enabled(True)
        try:
            bundle = build_sgemm()
            # parallelize only acc: scale's nest stays sequential, so
            # the export shows loop-nest AND parallel/worker spans
            bundle.computations["acc"].parallelize("i")
            kernel = bundle.function.compile(
                "cpu", profile=True, num_threads=2, cache=False)
            inputs = bundle.make_inputs(PARAMS,
                                        np.random.default_rng(0))
            kernel(**{k: np.copy(v) for k, v in inputs.items()},
                   **PARAMS)
            dest = tmp_path / "trace.json"
            assert write_trace_file(str(dest)) == str(dest)
        finally:
            tracer.set_enabled(None)
            tracer.clear()
        doc = json.loads(dest.read_text())
        events = doc["traceEvents"]
        cats = {e["cat"] for e in events}
        assert {CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER} <= cats
        assert all(e["ph"] == "X" for e in events)
        stage_names = {e["name"] for e in events
                       if e["cat"] == CAT_COMPILE}
        assert "compile:emit" in stage_names
        print_table("trace export", {
            "events": len(events),
            "categories": ", ".join(sorted(cats)),
        })
