#!/usr/bin/env python3
"""sgemm with the paper's full optimization set (Section VI-A).

Applies two-level blocking, vectorization, unrolling, array packing and
parallelization; verifies against NumPy BLAS; then reproduces Figure 1
(left): normalized times for MKL / Polly / AlphaZ / Pluto / Tiramisu on
the modeled 2x24-core Xeon node.

Run:  python examples/sgemm_tuned.py
"""

import time

import numpy as np

from repro.evaluation.fig1 import autotune_sgemm, figure1_cpu
from repro.kernels.linalg import build_sgemm, schedule_sgemm_cpu
from repro.linalg_lib import sgemm as mkl_sgemm

# -- correctness at a real (small) size --------------------------------------

bundle = build_sgemm()
schedule_sgemm_cpu(bundle, 16, 8)
kernel = bundle.function.compile("cpu")

n = 64
rng = np.random.default_rng(0)
a = rng.random((n, n)).astype(np.float32)
b = rng.random((n, n)).astype(np.float32)
c0 = rng.random((n, n)).astype(np.float32)

c = c0.copy()
t0 = time.perf_counter()
kernel(A=a, B=b, C=c, N=n, M=n, K=n)
t_kernel = time.perf_counter() - t0

ref = mkl_sgemm(1.5, a, b, 0.5, c0.copy())
assert np.allclose(c, ref, atol=1e-3)
print(f"OK: scheduled sgemm({n}) matches BLAS "
      f"(generated-Python time {t_kernel*1e3:.1f} ms)")

# -- Figure 1 (left) at the paper's 1060^3 size -------------------------------

t1, t2 = autotune_sgemm()
print(f"\nauto-tuned tile sizes: outer {t1}, register block {t2}")
print("\nFigure 1 (left) — normalized sgemm time on the modeled CPU")
print("(paper: MKL 1.0, Tiramisu ~1.1, Pluto ~5, AlphaZ ~8, Polly ~20)\n")
for name, value in figure1_cpu().items():
    bar = "#" * max(1, min(60, int(value * 4)))
    print(f"  {name:12s} {value:8.2f}  {bar}")
