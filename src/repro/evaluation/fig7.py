"""Figure 7: strong scaling of distributed Tiramisu code on 2, 4, 8 and
16 nodes (speedup relative to 2 nodes).

The paper's claim: "distributed code generated from Tiramisu scales well
as the number of nodes increases" — near-linear for kernels without
communication, slightly sublinear where halo exchanges are needed.
"""

from __future__ import annotations

from typing import Dict, List

from .fig6 import BENCHES, tiramisu_distributed_time

NODE_COUNTS = [2, 4, 8, 16]


def figure7(benches: List[str] = None,
            node_counts: List[int] = None) -> Dict[str, Dict[int, float]]:
    """speedup[bench][nodes] relative to 2 nodes."""
    benches = benches or BENCHES
    node_counts = node_counts or NODE_COUNTS
    out: Dict[str, Dict[int, float]] = {}
    for bench in benches:
        times = {n: tiramisu_distributed_time(bench, n)
                 for n in node_counts}
        base = times[node_counts[0]]
        out[bench] = {n: base / t for n, t in times.items()}
    return out


def render_figure7(data=None) -> str:
    data = data or figure7()
    node_counts = sorted(next(iter(data.values())))
    lines = ["benchmark".ljust(14)
             + "".join(f"{n} nodes".ljust(10) for n in node_counts)]
    for bench, speedups in data.items():
        row = bench.ljust(14)
        for n in node_counts:
            row += f"{speedups[n]:.2f}x".ljust(10)
        lines.append(row)
    return "\n".join(lines)
