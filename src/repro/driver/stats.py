"""One stats vocabulary for every cache tier.

Before this module the driver exposed three differently-shaped stats
accessors: ``CompileCache.stats()`` (a plain dict), ``CompileReport.
cache_stats`` (a copy of that dict) and ``CompileReport.isl_cache_stats``
(a flat dict whose keys carried ad-hoc ``empty_``/``compose_`` prefixes).
:class:`CacheStats` replaces all three shapes with one dataclass and a
shared key vocabulary — ``hits`` / ``misses`` / ``evictions`` /
``corruptions`` / ``size`` / ``maxsize`` — qualified by a *tier* name
(``memory``, ``disk``, ``isl.empty``, ``isl.compose``).

Backward compatibility (kept for one release): :class:`CacheStats` is a
:class:`~collections.abc.Mapping`, so every existing dict-style read
(``stats["hits"]``, ``stats.get("evictions", 0)``, ``dict(stats)``,
equality against a plain dict) keeps working.  Grouped tiers
(:class:`CacheStatsGroup`) additionally answer the legacy flat keys
(``empty_hits``, ``compose_size``, ...) by splitting off the tier
prefix.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: The shared counter vocabulary every tier reports (tier-specific
#: extras — e.g. the disk tier's byte totals — ride in ``extra``).
STAT_KEYS = ("hits", "misses", "evictions", "corruptions", "size",
             "maxsize")


@dataclass
class CacheStats(Mapping):
    """Point-in-time counters of one cache tier, dict-compatible."""

    tier: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corruptions: int = 0
    size: int = 0
    maxsize: Optional[int] = None
    #: Tier-specific extras (e.g. ``bytes`` / ``max_bytes`` on disk).
    extra: Dict[str, float] = field(default_factory=dict)

    # -- Mapping (the legacy dict-style surface) ------------------------

    def _mapping(self) -> Dict[str, object]:
        out: Dict[str, object] = {key: getattr(self, key)
                                  for key in STAT_KEYS}
        out.update(self.extra)
        return out

    def __getitem__(self, key: str):
        if key in STAT_KEYS:
            return getattr(self, key)
        return self.extra[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._mapping())

    def __len__(self) -> int:
        return len(STAT_KEYS) + len(self.extra)

    def __eq__(self, other) -> bool:
        if isinstance(other, CacheStats):
            return self.tier == other.tier \
                and self._mapping() == other._mapping()
        if isinstance(other, Mapping):
            return self._mapping() == dict(other)
        return NotImplemented

    def __hash__(self):
        return hash((self.tier, tuple(sorted(self._mapping().items()))))

    # -- the shared vocabulary ------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Canonical (unprefixed) key -> value copy."""
        return self._mapping()

    def prefixed(self, prefix: Optional[str] = None,
                 sep: str = "_") -> Dict[str, object]:
        """Tier-qualified flat copy: ``{"disk_hits": ..., ...}``.  The
        default prefix is the tier name's last path segment, which is
        what reproduces the legacy isl keys (tier ``isl.empty`` ->
        ``empty_hits``)."""
        if prefix is None:
            prefix = self.tier.rsplit(".", 1)[-1]
        return {f"{prefix}{sep}{key}": value
                for key, value in self._mapping().items()}

    def format_line(self) -> str:
        """One human-readable summary line for trace tables."""
        cap = f"/{self.maxsize}" if self.maxsize is not None else ""
        return (f"{self.hits} hits / {self.misses} misses / "
                f"{self.evictions} evictions "
                f"(size {self.size}{cap})")


class CacheStatsGroup(Mapping):
    """Several tiers behind one mapping.

    Canonical reads go through :meth:`tier` (``group.tier("isl.empty")
    .hits``) or iteration over :attr:`tiers`; the mapping surface
    answers the *legacy flat keys* (``empty_hits``, ``compose_misses``,
    ``empty_size``, ...) so pre-existing dict-style consumers keep
    working for one release."""

    #: Legacy flat-key suffix -> CacheStats attribute.
    _SUFFIXES = {"hits": "hits", "misses": "misses", "size": "size",
                 "evictions": "evictions", "corruptions": "corruptions",
                 "maxsize": "maxsize"}

    def __init__(self, *stats: CacheStats):
        self.tiers: Dict[str, CacheStats] = {s.tier: s for s in stats}

    def tier(self, name: str) -> CacheStats:
        """The named tier's canonical stats."""
        return self.tiers[name]

    def _flat(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for s in self.tiers.values():
            prefix = s.tier.rsplit(".", 1)[-1]
            for suffix in ("hits", "misses", "size"):
                out[f"{prefix}_{suffix}"] = getattr(s, suffix)
        return out

    def __getitem__(self, key: str):
        for suffix, attr in self._SUFFIXES.items():
            tail = f"_{suffix}"
            if key.endswith(tail):
                prefix = key[:-len(tail)]
                for s in self.tiers.values():
                    if s.tier == prefix \
                            or s.tier.rsplit(".", 1)[-1] == prefix:
                        return getattr(s, attr)
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._flat())

    def __len__(self) -> int:
        return len(self._flat())

    def __eq__(self, other) -> bool:
        if isinstance(other, CacheStatsGroup):
            return self.tiers == other.tiers
        if isinstance(other, Mapping):
            return self._flat() == dict(other)
        return NotImplemented

    def __repr__(self):
        return f"CacheStatsGroup({', '.join(sorted(self.tiers))})"
