"""Edge cases: β ordering canonicalization chains, the 4-argument gpu()
command, set_schedule round trips, and ConstantScalar."""

import numpy as np
import pytest

from repro import (Buffer, Computation, ConstantScalar, Function, Input,
                   Param, Var)
from repro.codegen.ast import loops_in


class TestOrderingChains:
    def make(self, n_comps=4):
        f = Function("f")
        comps = []
        with f:
            for k in range(n_comps):
                c = Computation(f"c{k}", [Var(f"i{k}", 0, 4)], float(k))
                comps.append(c)
        return f, comps

    def test_chain_of_afters(self):
        f, (a, b, c, d) = self.make()
        d.after(c)
        c.after(b)
        b.after(a)
        beta = f.resolve_order()
        order = sorted(beta, key=lambda nm: beta[nm][0])
        assert order == ["c0", "c1", "c2", "c3"]

    def test_before_chain(self):
        f, (a, b, c, d) = self.make()
        d.before(a)
        c.before(d)
        beta = f.resolve_order()
        assert beta["c2"][0] < beta["c3"][0] < beta["c0"][0]

    def test_mixed_levels(self):
        f = Function("f")
        with f:
            a = Computation("a", [Var("i", 0, 4), Var("j", 0, 4)], 0.0)
            b = Computation("b", [Var("i2", 0, 4), Var("j2", 0, 4)], 1.0)
            c = Computation("c", [Var("i3", 0, 4), Var("j3", 0, 4)], 2.0)
        b.after(a, "i")        # share i loop
        c.after(b, "j2")       # share both loops with b (and a's i)
        ast = f.lower()
        outer = loops_in(ast)
        # one shared outermost loop
        assert len([l for l in outer if l.level == 0]) == 1

    def test_interleaving_executes_in_order(self):
        f = Function("f")
        with f:
            buf = Buffer("s", [1])
            writes = []
            for k in range(3):
                c = Computation(f"w{k}", [Var(f"u{k}", 0, 1)], float(k))
                c.store_in(buf, [0])
                writes.append(c)
        writes[0].after(writes[2])
        writes[2].after(writes[1])
        # execution order: w1, w2, w0 -> final value 0
        out = f.compile("cpu")()
        assert out["s"][0] == 0.0

    def test_directive_on_inlined_comp_ignored(self):
        f = Function("f")
        with f:
            a = Computation("a", [Var("i", 0, 4)], 1.0)
            b = Computation("b", [Var("i2", 0, 4)], None)
            b.set_expression(a(Var("i2", 0, 4)) + 1.0)
        b.after(a)
        a.inline()
        out = f.compile("cpu")()
        assert (out["b"] == 2.0).all()


class TestGpuCommand:
    def test_four_arg_gpu_maps_blocks_and_threads(self):
        f = Function("f")
        with f:
            c = Computation("c", [Var("i", 0, 8), Var("j", 0, 8),
                                  Var("k", 0, 8), Var("l", 0, 8)], 1.0)
        c.gpu("i", "j", "k", "l")
        kinds = [c.tags[m].kind for m in range(4)]
        assert kinds == ["gpu_block", "gpu_block",
                         "gpu_thread", "gpu_thread"]
        kernel = f.compile("gpu")
        st = kernel.gpu_stats()
        assert len(st.block_dims) == 2 and len(st.thread_dims) == 2
        assert (kernel()["c"] == 1).all()


class TestSetScheduleRoundTrips:
    @pytest.mark.parametrize("mapping", [
        "{ c[i,j] -> c[j,i] }",
        "{ c[i,j] -> c[i, i + j] }",
        "{ c[i,j] -> c[i + 1, j] }",
        "{ c[i,j] -> c[-i, j] }",
    ])
    def test_semantics_preserved(self, mapping):
        def build():
            f = Function("f")
            with f:
                i, j = Var("i", 0, 5), Var("j", 0, 4)
                c = Computation("c", [i, j], None)
                c.set_expression(1.0 * i + 10.0 * j)
            return f, c
        f_ref, __ = build()
        ref = f_ref.compile("cpu")()["c"]
        f2, c2 = build()
        c2.set_schedule(mapping)
        got = f2.compile("cpu")()["c"]
        assert np.allclose(got, ref)


class TestConstantScalar:
    def test_hoisted_invariant(self):
        N = Param("N")
        f = Function("f", params=[N])
        with f:
            inp = Input("inp", [Var("x", 0, N)])
            scale = ConstantScalar("scale", 2.5)
            i = Var("i", 0, N)
            c = Computation("c", [i], None)
            c.set_expression(inp(i) * scale.ref())
        out = f.compile("cpu")(inp=np.arange(5, dtype=np.float32), N=5)
        assert np.allclose(out["c"], np.arange(5) * 2.5)

    def test_constant_feeds_constant(self):
        f = Function("f")
        with f:
            k = ConstantScalar("k", 7.0)
            m = ConstantScalar("m", None)
            m.set_expression(k.ref() * 2.0)
            c = Computation("c", [Var("i", 0, 3)], None)
            c.set_expression(m.ref() + 1.0)
        out = f.compile("cpu")()
        assert (out["c"] == 15.0).all()
