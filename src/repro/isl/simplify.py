"""Constraint-system simplification: redundancy removal and gist."""

from __future__ import annotations

from typing import List, Sequence

from .basic import BasicMap
from .constraint import EQ, GE, Constraint
from .fourier_motzkin import rational_feasible
from .linexpr import LinExpr


def _implied(system: Sequence[Constraint], c: Constraint) -> bool:
    """True if ``c`` is rationally implied by ``system`` (safe direction:
    a rationally-implied constraint is integer-implied as well)."""
    if c.kind == EQ:
        return (_implied(system, Constraint.ge(c.expr))
                and _implied(system, Constraint.ge(-c.expr)))
    # system and not(e >= 0), i.e. system and -e - 1 >= 0 infeasible?
    return not rational_feasible(list(system) + [Constraint.ge(-c.expr - 1)])


def remove_redundant(bmap: BasicMap) -> BasicMap:
    """Drop constraints implied by the remaining ones.

    Deterministic on the input structure, so the result is memoized in
    the process-wide composition cache (codegen calls this on the same
    iteration domains every compile)."""
    from .cache import composed
    return composed("remove_redundant", bmap, None,
                    lambda: _remove_redundant_uncached(bmap))


def _remove_redundant_uncached(bmap: BasicMap) -> BasicMap:
    kept: List[Constraint] = []
    cons = list(bmap.constraints)
    # De-duplicate first.
    uniq: List[Constraint] = []
    for c in cons:
        if c.is_trivially_true():
            continue
        if c not in uniq:
            uniq.append(c)
    for i, c in enumerate(uniq):
        rest = kept + uniq[i + 1:]
        if not _implied(rest, c):
            kept.append(c)
    return bmap.copy_with(constraints=kept)


def gist(bmap: BasicMap, context: BasicMap) -> BasicMap:
    """Simplify ``bmap`` under the assumption that ``context`` holds:
    drop constraints of ``bmap`` implied by ``context`` + the rest.
    Memoized like :func:`remove_redundant`."""
    from .cache import composed
    return composed("gist", bmap, context,
                    lambda: _gist_uncached(bmap, context))


def _gist_uncached(bmap: BasicMap, context: BasicMap) -> BasicMap:
    params = bmap.space.aligned_params(context.space)
    bmap = bmap.align_params(params)
    context = context.align_params(params)
    kept: List[Constraint] = []
    own = list(bmap.constraints)
    # Shift context divs clear of bmap's so the combined system is sound.
    shift = {("d", k): ("d", k + bmap.n_div) for k in range(context.n_div)}
    ctx = [c.remap(shift) for c in context.constraints]
    for i, c in enumerate(own):
        rest = kept + own[i + 1:] + ctx
        if not _implied(rest, c):
            kept.append(c)
    return bmap.copy_with(constraints=kept)
