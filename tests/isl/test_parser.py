"""Unit tests for the ISL-notation parser and printer round-trips."""

import pytest

from repro.isl import ParseError, parse, parse_map, parse_set, points


class TestSets:
    def test_simple_box(self):
        s = parse_set("{ S[i,j] : 0 <= i < 3 and 0 <= j < 2 }")
        assert s.space.out_name == "S"
        assert sorted(points(s)) == [(i, j) for i in range(3)
                                     for j in range(2)]

    def test_chained_comparison(self):
        s = parse_set("{ [i] : 0 <= i <= 5 }")
        assert sorted(points(s)) == [(i,) for i in range(6)]

    def test_comma_groups(self):
        s = parse_set("{ [i,j] : 0 <= i, j < 3 }")
        assert len(list(points(s))) == 9

    def test_or_makes_pieces(self):
        s = parse_set("{ [i] : i = 0 or i = 7 }")
        assert len(s.pieces) == 2
        assert sorted(points(s)) == [(0,), (7,)]

    def test_not_equal(self):
        s = parse_set("{ [i] : 0 <= i < 4 and i != 2 }")
        assert sorted(points(s)) == [(0,), (1,), (3,)]

    def test_true_false(self):
        assert not parse_set("{ [i] : true and 0 <= i < 1 }").is_empty()
        assert parse_set("{ [i] : false }").is_empty()

    def test_params_declared_and_inferred(self):
        s = parse_set("[N] -> { [i] : 0 <= i < N }")
        assert s.space.params == ("N",)
        t = parse_set("{ [i] : 0 <= i < M }")  # M inferred
        assert "M" in t.space.params

    def test_exists(self):
        s = parse_set("{ [i] : exists a : i = 5a and 0 <= i < 20 }")
        assert sorted(points(s)) == [(0,), (5,), (10,), (15,)]

    def test_mod(self):
        s = parse_set("{ [i] : i mod 4 = 1 and 0 <= i < 10 }")
        assert sorted(points(s)) == [(1,), (5,), (9,)]

    def test_negative_mod_semantics(self):
        # floor-division mod: -3 % 4 == 1.
        s = parse_set("{ [i] : i % 4 = 1 and -5 <= i <= 0 }")
        assert sorted(points(s)) == [(-3,)]

    def test_implicit_multiplication(self):
        s = parse_set("{ [i,j] : j = 2i and 0 <= i <= 2 }")
        assert sorted(points(s)) == [(0, 0), (1, 2), (2, 4)]

    def test_semicolon_union(self):
        s = parse_set("{ [i] : i = 1; [i] : i = 9 }")
        assert sorted(points(s)) == [(1,), (9,)]


class TestMaps:
    def test_expression_outputs(self):
        m = parse_map("{ [i,j] -> [j,i] }")
        assert m.contains_point([1, 2], [2, 1])

    def test_reused_name_means_equality(self):
        m = parse_map("{ S[i] -> T[i] }")
        assert m.contains_point([3], [3])
        assert not m.contains_point([3], [4])

    def test_floor(self):
        m = parse_map("{ [i] -> [floor(i/3)] }")
        assert m.contains_point([8], [2])
        assert m.contains_point([-1], [-1])
        assert not m.contains_point([8], [3])

    def test_tiling_map(self):
        m = parse_map("{ S[i] -> S[i0, i1] : i0 = floor(i/4) "
                      "and i1 = i % 4 }")
        assert m.contains_point([9], [2, 1])
        assert not m.contains_point([9], [2, 2])

    def test_exact_division(self):
        m = parse_map("{ [i] -> [i / 2] }")
        assert m.contains_point([6], [3])
        assert not m.contains_point([7], [3])  # 7/2 not exact

    def test_map_with_condition(self):
        m = parse_map("[N] -> { [i] -> [i+1] : 0 <= i < N }")
        assert m.contains_point([0], [1], param_vals={"N": 4})
        assert not m.contains_point([4], [5], param_vals={"N": 4})


class TestErrors:
    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse("{ [i] : i = 0 ")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse("{ [i] : i ? 0 }")

    def test_nonaffine_product(self):
        with pytest.raises(ParseError):
            parse("{ [i,j] : i*j = 4 }")

    def test_set_vs_map_guards(self):
        with pytest.raises(ParseError):
            parse_map("{ [i] : i = 0 }")
        with pytest.raises(ParseError):
            parse_set("{ [i] -> [i] }")

    def test_empty_braces(self):
        with pytest.raises(ParseError):
            parse("{ }")


class TestPrintRoundTrip:
    CASES = [
        "{ S[i, j] : 0 <= i < 5 and 0 <= j <= i }",
        "[N] -> { [i] : 0 <= i < N }",
        "{ [i] -> [i + 2] : i >= 0 }",
        "{ [i] : exists e : i = 3e and 0 <= i < 12 }",
        "{ S[i, j] -> T[j, i] : i >= j }",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        first = parse(text)
        printed = repr(first)
        second = parse(printed)
        try:
            if first.is_equal(second):
                return
        except NotImplementedError:
            pass  # subtract unavailable with divs; compare points instead
        assert _sample_points(first) == _sample_points(second)


def _sample_points(obj):
    """Concrete points of a (possibly parametric / unbounded) object,
    restricted to a test window."""
    sset = obj.to_set() if obj.space.is_map else obj
    from repro.isl import parse_set
    dims = ", ".join(f"w{k}" for k in range(len(sset.space.out_dims)))
    conds = " and ".join(f"-8 <= w{k} <= 8"
                         for k in range(len(sset.space.out_dims)))
    window = parse_set(f"{{ [{dims}] : {conds} }}")
    boxed = sset.intersect(
        window.__class__([p.rename_tuple(out_name=sset.space.out_name,
                                         keep_out=False)
                          for p in window.pieces]))
    return sorted(points(boxed, {"N": 6}))
