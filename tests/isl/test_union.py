"""Unit tests for unions of sets/maps: subtract, subset, equality."""

import pytest

from repro.isl import Map, Set, parse_map, parse_set


class TestUnionAlgebra:
    def test_union_contains_both(self):
        a = parse_set("{ [i] : 0 <= i < 3 }")
        b = parse_set("{ [i] : 10 <= i < 13 }")
        u = a | b
        assert u.contains_point([1]) and u.contains_point([11])
        assert not u.contains_point([5])

    def test_intersect_distributes(self):
        u = parse_set("{ [i] : 0 <= i < 10 or 20 <= i < 30 }")
        w = parse_set("{ [i] : 5 <= i < 25 }")
        x = u & w
        assert x.contains_point([7]) and x.contains_point([22])
        assert not x.contains_point([15])

    def test_quick_empty_pieces_dropped(self):
        a = parse_set("{ [i] : 0 <= i < 3 }")
        b = parse_set("{ [i] : i > 5 and i < 2 }")
        x = a & b
        assert x.is_empty()


class TestSubtract:
    def test_basic_difference(self):
        a = parse_set("{ [i] : 0 <= i <= 9 }")
        b = parse_set("{ [i] : 3 <= i <= 5 }")
        d = a - b
        for v in (0, 2, 6, 9):
            assert d.contains_point([v])
        for v in (3, 4, 5, 10):
            assert not d.contains_point([v])

    def test_difference_with_equality(self):
        a = parse_set("{ [i] : 0 <= i <= 4 }")
        b = parse_set("{ [i] : i = 2 }")
        d = a - b
        assert d.contains_point([1]) and d.contains_point([3])
        assert not d.contains_point([2])

    def test_subtract_divs_rejected(self):
        a = parse_set("{ [i] : 0 <= i <= 9 }")
        b = parse_set("{ [i] : exists e : i = 2e }")
        with pytest.raises(NotImplementedError):
            a - b

    def test_pieces_disjoint(self):
        from repro.isl import count
        a = parse_set("{ [i] : 0 <= i <= 9 }")
        b = parse_set("{ [i] : 4 <= i <= 5 }")
        d = a - b
        assert count(d) == 8


class TestSubsetEqual:
    def test_subset(self):
        small = parse_set("{ [i,j] : 0 <= i < 5 and 0 <= j <= i }")
        big = parse_set("{ [i,j] : 0 <= i < 5 and 0 <= j < 5 }")
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_equal_different_representations(self):
        a = parse_set("{ [i] : 0 <= i and i <= 9 }")
        b = parse_set("{ [i] : 0 <= i < 4 or 4 <= i <= 9 }")
        assert a.is_equal(b)

    def test_parametric_subset(self):
        a = parse_set("[N] -> { [i] : 1 <= i < N }")
        b = parse_set("[N] -> { [i] : 0 <= i < N }")
        assert a.is_subset(b)
        assert not b.is_subset(a)


class TestMapUnions:
    def test_apply_union(self):
        m = parse_map("{ [i] -> [i + 1] : i >= 0; [i] -> [i - 1] : i < 0 }")
        s = parse_set("{ [i] : i = 3 or i = -3 }")
        img = m.apply(s)
        assert img.contains_point([4])
        assert img.contains_point([-4])
        assert not img.contains_point([2])

    def test_domain_range_union(self):
        m = parse_map("{ [i] -> [0] : 0 <= i < 2; [i] -> [1] : 5 <= i < 7 }")
        assert m.domain().contains_point([6])
        assert not m.domain().contains_point([3])
        assert m.range().contains_point([1])
        assert not m.range().contains_point([2])

    def test_coalesce_drops_duplicates(self):
        a = parse_set("{ [i] : 0 <= i < 5 }")
        u = (a | a).coalesce()
        assert len(u.pieces) == 1

    def test_empty_union_space(self):
        from repro.isl import Space
        s = Set.empty(Space.set_space(("i",)))
        assert s.is_empty()
        u = s.union(parse_set("{ [i] : i = 0 }"))
        assert not u.is_empty()


class TestStructuralEquality:
    """Union-level __eq__/__hash__, consistent with BasicMap's: same
    space plus the same *set* of pieces."""

    def test_parsed_twice_equal_and_hash_equal(self):
        a = parse_set("{ [i] : 0 <= i < 10 }")
        b = parse_set("{ [i] : 0 <= i < 10 }")
        assert a == b
        assert hash(a) == hash(b)
        m1 = parse_map("{ [i] -> [i + 1] : 0 <= i < 5 }")
        m2 = parse_map("{ [i] -> [i + 1] : 0 <= i < 5 }")
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_piece_order_insensitive(self):
        a = parse_set("{ [i] : 0 <= i < 3; [i] : 10 <= i < 13 }")
        b = parse_set("{ [i] : 10 <= i < 13; [i] : 0 <= i < 3 }")
        assert a == b
        assert hash(a) == hash(b)

    def test_rescaled_constraints_equal(self):
        # Constraints normalise at construction, so scaled duplicates of
        # one conjunction are structurally identical.
        a = parse_set("{ [i] : 2i >= 0 and 3i <= 12 }")
        b = parse_set("{ [i] : i >= 0 and i <= 4 }")
        assert a == b
        assert hash(a) == hash(b)

    def test_structural_finer_than_is_equal(self):
        a = parse_set("{ [i] : 0 <= i <= 9 }")
        b = parse_set("{ [i] : 0 <= i < 4 or 4 <= i <= 9 }")
        assert a.is_equal(b)
        assert a != b  # different piece structure

    def test_usable_as_dict_key(self):
        table = {}
        table[parse_map("{ [i] -> [i] }")] = "identity"
        table[parse_map("{ [i] -> [i + 1] }")] = "shift"
        assert table[parse_map("{ [i] -> [i] }")] == "identity"
        assert table[parse_map("{ [i] -> [i + 1] }")] == "shift"
        assert len({parse_set("{ [i] : i = 0 }"),
                    parse_set("{ [i] : i = 0 }")}) == 1

    def test_not_equal_to_other_types(self):
        assert parse_set("{ [i] : i = 0 }") != "{ [i] : i = 0 }"
        assert parse_set("{ [i] : i = 0 }") != parse_set("{ [i] : i = 1 }")
