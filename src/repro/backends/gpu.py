"""The GPU backend: functional simulation of the CUDA target.

No GPU is available in this environment, so the backend *simulates* the
paper's CUDA backend (DESIGN.md, substitution table): the generated code
executes the exact Layer IV program — block/thread loops, host<->device
copies, shared/local/constant staging buffers, barriers — sequentially
on the CPU, which preserves semantics because a legal GPU schedule has no
cross-thread ordering requirements other than barriers (which delimit the
copy/compute phases that the sequential order already respects).

Timing behaviour (coalescing, shared-memory reuse, thread divergence,
constant cache, transfer cost) is modelled analytically by
:mod:`repro.machine.gpu_model` from the same AST, and reported through
:meth:`GpuKernel.gpu_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codegen.ast import Loop, Stmt, loops_in, stmts_in, walk
from repro.core.buffer import ArgKind, Buffer, MemSpace
from repro.core.computation import Operation
from repro.core.errors import CodegenError
from repro.core.function import Function

from repro.driver.registry import Backend, register_backend

from .cpu import (CompiledKernel, _bind_python_kernel, collect_buffers,
                  emit_source)


@dataclass
class GpuLaunchInfo:
    """Static structure of the generated GPU code (for the cost model
    and for tests asserting the mapping)."""

    block_dims: List[str] = field(default_factory=list)
    thread_dims: List[str] = field(default_factory=list)
    shared_buffers: List[Buffer] = field(default_factory=list)
    local_buffers: List[Buffer] = field(default_factory=list)
    constant_buffers: List[Buffer] = field(default_factory=list)
    global_buffers: List[Buffer] = field(default_factory=list)
    h2d_copies: int = 0
    d2h_copies: int = 0
    has_barriers: bool = False


class GpuKernel(CompiledKernel):
    """A compiled kernel for the (simulated) GPU target."""

    def __init__(self, *args, launch_info: GpuLaunchInfo, **kwargs):
        super().__init__(*args, **kwargs)
        self.launch_info = launch_info

    def gpu_stats(self) -> GpuLaunchInfo:
        return self.launch_info


def _launch_info(fn: Function, ast=None) -> GpuLaunchInfo:
    info = GpuLaunchInfo()
    if ast is None:
        ast = fn.lower()
    for loop in loops_in(ast):
        if loop.tag is None:
            continue
        if loop.tag.kind == "gpu_block":
            info.block_dims.append(loop.var)
        elif loop.tag.kind == "gpu_thread":
            info.thread_dims.append(loop.var)
    for buf in collect_buffers(fn):
        space = buf.mem_space
        if space == MemSpace.GPU_SHARED:
            info.shared_buffers.append(buf)
        elif space == MemSpace.GPU_LOCAL:
            info.local_buffers.append(buf)
        elif space == MemSpace.GPU_CONSTANT:
            info.constant_buffers.append(buf)
        elif space == MemSpace.GPU_GLOBAL:
            info.global_buffers.append(buf)
    for comp in fn.active_computations():
        if isinstance(comp, Operation):
            if comp.payload.get("direction") == "h2d":
                info.h2d_copies += 1
            elif comp.payload.get("direction") == "d2h":
                info.d2h_copies += 1
            elif comp.op_kind == "barrier":
                info.has_barriers = True
    return info


def validate_gpu_mapping(fn: Function, ast=None) -> None:
    """Every computation inside the device region must have gpu tags, and
    block dims must be outside thread dims."""
    if ast is None:
        ast = fn.lower()

    def check(node, seen_thread):
        if isinstance(node, Loop):
            if node.tag is not None and node.tag.kind == "gpu_block" \
                    and seen_thread:
                raise CodegenError(
                    "gpu_block loop nested inside a gpu_thread loop")
            seen_thread = seen_thread or (
                node.tag is not None and node.tag.kind == "gpu_thread")
            for child in node.body.children:
                check(child, seen_thread)
        elif hasattr(node, "children"):
            for child in node.children:
                check(child, seen_thread)

    check(ast, False)


@register_backend
class GpuBackend(Backend):
    """The simulated CUDA target: mapping validation + launch-info
    extraction during emit, exec binding."""

    name = "gpu"

    def emit(self, ctx) -> str:
        validate_gpu_mapping(ctx.fn, ctx.ast)
        ctx.extras["launch_info"] = _launch_info(ctx.fn, ctx.ast)
        return emit_source(ctx.fn, ast=ctx.ast)

    def bind(self, ctx) -> GpuKernel:
        pyfunc = _bind_python_kernel(ctx.fn, ctx.source, "tiramisu-gpu")
        return GpuKernel(ctx.fn, ctx.source, pyfunc,
                         collect_buffers(ctx.fn), ctx.fn.param_names,
                         launch_info=ctx.extras["launch_info"])


def compile_gpu(fn: Function, check_legality: bool = False,
                verbose: bool = False, **opts) -> GpuKernel:
    """Deprecated shim: compile for the simulated GPU target through the
    staged driver (prefer ``fn.compile("gpu")``)."""
    import warnings
    warnings.warn(
        'compile_gpu() is deprecated and will be removed in release 2.0; '
        'use Function.compile("gpu") / repro.driver.compile_function (or '
        "compile_batch for many kernels)", DeprecationWarning, stacklevel=2)
    from repro.driver import compile_function
    return compile_function(fn, target="gpu", check_legality=check_legality,
                            verbose=verbose, **opts)
