"""Execution backends: CPU (NumPy), GPU simulator, distributed simulator."""
