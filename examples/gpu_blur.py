#!/usr/bin/env python3
"""The paper's Figure 3(b): blur mapped to the (simulated) GPU.

Demonstrates the novel memory-hierarchy commands: tile_gpu, compute_at,
cache_shared_at (automatic footprint + staging copy + barrier), SOA data
layout via store_in, and explicit host<->device copy operations.

Run:  python examples/gpu_blur.py
"""

import numpy as np

from repro import Computation, Function, Input, Param, Var
from repro.machine import GpuCostModel

N, M = Param("N"), Param("M")

with Function("blur_gpu", params=[N, M]) as fn:
    img = Input("img", [Var("x", 0, N), Var("y", 0, M), Var("z", 0, 3)])
    iw, jw, cw = Var("iw", 0, N - 2), Var("jw", 0, M - 2), Var("cw", 0, 3)
    i, j, c = Var("i", 0, N - 4), Var("j", 0, M - 2), Var("c", 0, 3)
    bx = Computation("bx", [iw, jw, cw], None)
    bx.set_expression((img(iw, jw, cw) + img(iw, jw + 1, cw)
                       + img(iw, jw + 2, cw)) / 3)
    by = Computation("by", [i, j, c], None)
    by.set_expression((bx(i, j, c) + bx(i + 1, j, c)
                       + bx(i + 2, j, c)) / 3)

# Struct-of-arrays layout for coalesced accesses (Layer III command).
bx.store_in([cw, iw, jw])
by.store_in([c, i, j])

# Map to the GPU grid; compute bx inside by's tile and stage it in
# shared memory (footprint, copy and synchronization are automatic).
by.tile_gpu("i", "j", 16, 16, Var("i0"), Var("j0"), Var("i1"), Var("j1"))
bx.compute_at(by, "j0")
bx.cache_shared_at(by, "j0")

# Explicit copies between host and device (Layer IV operations).
cp_in = img.host_to_device()
cp_out = by.device_to_host()
cp_in.before(bx, None)
cp_out.after(by, None)

kernel = fn.compile("gpu")
info = kernel.gpu_stats()
print(f"grid dims (block loops):  {info.block_dims}")
print(f"thread dims:              {info.thread_dims}")
print(f"shared-memory buffers:    {[b.name for b in info.shared_buffers]}")
print(f"transfers: {info.h2d_copies} h2d, {info.d2h_copies} d2h")

n, m = 66, 52
rng = np.random.default_rng(1)
image = rng.random((n, m, 3)).astype(np.float32)
out = kernel(img_host=image, N=n, M=m)["by_host"]   # SOA: (c, i, j)

bx_ref = (image[:n-2, :m-2] + image[:n-2, 1:m-1] + image[:n-2, 2:m]) / 3
by_ref = (bx_ref[:n-4] + bx_ref[1:n-3] + bx_ref[2:n-2]) / 3
assert np.allclose(out.transpose(1, 2, 0), by_ref, atol=1e-5)
print("OK: simulated GPU execution matches the reference")

report = GpuCostModel(fn, {"N": 2112, "M": 3520}).estimate_gpu()
print(f"modeled K40 time at paper size: kernel "
      f"{report.kernel_seconds*1e3:.2f} ms + transfers "
      f"{report.transfer_seconds*1e3:.2f} ms")
