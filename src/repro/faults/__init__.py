"""Deterministic fault injection for the execution runtimes.

See :mod:`repro.faults.plan` for the model and docs/robustness.md for
the failure semantics each runtime guarantees under an active plan.
"""

from .plan import (FAULT_KINDS, FaultPlan, FaultSpec, get_plan, injected,
                   install, uninstall)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "get_plan",
    "injected",
    "install",
    "uninstall",
]
