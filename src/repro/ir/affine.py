"""Extraction of affine forms from expression trees.

Bridges the expression IR (:mod:`repro.ir.expr`) and the polyhedral
representation (:mod:`repro.isl`): index expressions and loop bounds are
converted to :class:`~repro.isl.linexpr.LinExpr` when affine; non-affine
indices (``clamp``, products of variables, data-dependent terms) raise
:class:`NonAffineError` so callers can over-approximate, as Section V-B
of the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.isl.linexpr import Dim, LinExpr

from .expr import (Access, BinOp, Call, Cast, Const, Expr, IterVar, ParamRef,
                   Select, UnOp)


class NonAffineError(ValueError):
    """The expression has no affine representation."""


def expr_to_linexpr(expr: Expr, dims: Mapping[str, Dim]) -> LinExpr:
    """Convert ``expr`` to a LinExpr over ``dims`` (name -> dim ref).

    Raises :class:`NonAffineError` for anything outside the affine
    fragment (the caller decides how to over-approximate).
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            raise NonAffineError(f"non-integer constant {expr.value!r}")
        return LinExpr.constant(expr.value)
    if isinstance(expr, (IterVar, ParamRef)):
        if expr.name not in dims:
            raise NonAffineError(f"unknown variable {expr.name!r}")
        return LinExpr.dim(*dims[expr.name])
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return -expr_to_linexpr(expr.operand, dims)
        raise NonAffineError(f"non-affine unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return (expr_to_linexpr(expr.lhs, dims)
                    + expr_to_linexpr(expr.rhs, dims))
        if expr.op == "-":
            return (expr_to_linexpr(expr.lhs, dims)
                    - expr_to_linexpr(expr.rhs, dims))
        if expr.op == "*":
            lhs = expr_to_linexpr(expr.lhs, dims)
            rhs = expr_to_linexpr(expr.rhs, dims)
            if lhs.is_constant():
                return rhs * int(lhs.const)
            if rhs.is_constant():
                return lhs * int(rhs.const)
            raise NonAffineError("product of two variables")
        raise NonAffineError(f"non-affine operator {expr.op!r}")
    raise NonAffineError(f"non-affine expression {expr!r}")


def try_expr_to_linexpr(expr: Expr,
                        dims: Mapping[str, Dim]) -> Optional[LinExpr]:
    try:
        return expr_to_linexpr(expr, dims)
    except NonAffineError:
        return None


def is_affine(expr: Expr, dims: Mapping[str, Dim]) -> bool:
    return try_expr_to_linexpr(expr, dims) is not None
