"""Hybrid static/dynamic execution: the task-graph runtime.

The polyhedral layers prove which tiles of a schedule may run
concurrently; :mod:`repro.runtime.taskgraph` lowers a tiled nest to a
task DAG from those dependences, and :mod:`repro.runtime.scheduler`
executes ready tiles across the shared worker pool with a ready-queue
scheduler instead of fork-join barriers (docs/task_runtime.md).
"""

from .taskgraph import (TaskGraph, TaskGraphUnavailable, TileTask,
                        build_task_graph, choose_tile_sizes, tile_deltas)
from .scheduler import TaskGraphRuntime, run_forkjoin

__all__ = [
    "TaskGraph", "TaskGraphUnavailable", "TileTask", "build_task_graph",
    "choose_tile_sizes", "tile_deltas",
    "TaskGraphRuntime", "run_forkjoin",
]
