"""The self-protecting compile service (repro.driver.resilience,
repro.driver.recovery, docs/robustness.md): deadline propagation
through the staged pipeline, admission control on the batch front end,
the worker-pool circuit breaker and its graceful degradation, disk-IO
fault absorption, crash-recovery sweeps, torn-journal tolerance, and a
quick seeded chaos soak tying them together."""

import errno
import os
import time

import numpy as np
import pytest

from repro import Computation, Function, Var
from repro.core.errors import (AdmissionError, DeadlineExceededError,
                               WorkerFailureError)
from repro.driver import (BatchCompiler, Deadline, current_deadline,
                          deadline_scope, kernel_registry, pool_breaker,
                          recovery_sweep)
from repro.driver.diskcache import (DiskCache, active_disk_cache,
                                    configure, reset_configuration,
                                    resolve_max_quarantine)
from repro.driver.resilience import (CircuitBreaker, STATE_CLOSED,
                                     STATE_HALF_OPEN, STATE_OPEN)
from repro.faults import FaultPlan, injected, uninstall
from repro.obs.events import (configure_event_log, read_events,
                              read_journal, repair_journal,
                              reset_event_log_configuration)


def build(name="f", scale=2.0):
    f = Function(name)
    with f:
        i, j = Var("i", 0, 8), Var("j", 0, 8)
        Computation("c", [i, j], float(scale) * i + j)
    return f


def expected_output(scale):
    return np.add.outer(float(scale) * np.arange(8.0), np.arange(8.0))


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    for var in ("TIRAMISU_CACHE_DIR", "TIRAMISU_CACHE_MAX_BYTES",
                "TIRAMISU_EVENT_LOG", "TIRAMISU_TIMEOUT",
                "TIRAMISU_MAX_PENDING", "TIRAMISU_MAX_QUEUED_BYTES",
                "TIRAMISU_ADMISSION_POLICY"):
        monkeypatch.delenv(var, raising=False)
    reset_configuration()
    reset_event_log_configuration()
    kernel_registry.clear()
    uninstall()
    yield
    uninstall()
    reset_configuration()
    reset_event_log_configuration()
    kernel_registry.clear()


# -- deadlines ---------------------------------------------------------------

class TestDeadline:
    def test_budget_and_remaining(self):
        deadline = Deadline(5.0)
        assert deadline.budget == 5.0
        assert 0.0 < deadline.remaining() <= 5.0
        assert not deadline.expired()

    def test_expired_budget_never_goes_negative(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_naming_the_stage(self):
        deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("emit")
        assert err.value.stage == "emit"
        assert err.value.budget == 0.0
        assert "emit" in str(err.value)

    def test_check_passes_with_budget_left(self):
        Deadline(60.0).check("emit")   # no raise

    def test_from_timeout_resolution(self, monkeypatch):
        assert Deadline.from_timeout(None) is None
        explicit = Deadline.from_timeout(2.5)
        assert explicit is not None and explicit.budget == 2.5
        monkeypatch.setenv("TIRAMISU_TIMEOUT", "7.5")
        from_env = Deadline.from_timeout(None)
        assert from_env is not None and from_env.budget == 7.5

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline(3.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is deadline
        assert current_deadline() is None


class TestDeadlinePropagation:
    """A request that spends its budget inside one stage is failed fast
    by the *next* stage's guard — it never starts."""

    def test_slow_stage_blows_the_budget(self):
        f = build("dl_blow")
        plan = FaultPlan().slow_stage(stage="legality", seconds=0.25)
        with injected(plan):
            with pytest.raises(DeadlineExceededError) as err:
                f.compile("cpu", check_legality=True, timeout=0.05)
        assert plan.fired("slow-stage") == 1
        # legality began inside budget; the emit guard found it gone.
        assert err.value.stage == "emit"
        assert err.value.budget == 0.05

    def test_no_timeout_means_no_deadline(self):
        f = build("dl_none")
        plan = FaultPlan().slow_stage(stage="emit", seconds=0.05)
        with injected(plan):
            kernel = f.compile("cpu")
        assert kernel()["c"].shape == (8, 8)

    def test_generous_budget_compiles_clean(self):
        kernel = build("dl_ok").compile("cpu", timeout=60.0)
        assert kernel()["c"].shape == (8, 8)

    def test_no_stage_begins_after_exhaustion(self, tmp_path):
        """The journal property: within one compile_id, no
        ``resilience.stage.begin`` line may follow the
        ``resilience.deadline.exceeded`` line."""
        log = tmp_path / "events.jsonl"
        configure_event_log(str(log))
        f = build("dl_journal")
        plan = FaultPlan().slow_stage(stage="legality", seconds=0.25)
        with injected(plan):
            with pytest.raises(DeadlineExceededError):
                f.compile("cpu", check_legality=True, timeout=0.05)
        records = read_events(str(log))
        exceeded = [n for n, r in enumerate(records)
                    if r["name"] == "resilience.deadline.exceeded"]
        assert len(exceeded) == 1
        cid = records[exceeded[0]]["compile_id"]
        assert cid
        after = records[exceeded[0] + 1:]
        assert not [r for r in after
                    if r["compile_id"] == cid
                    and r["name"] == "resilience.stage.begin"]

    def test_batch_submit_starts_the_clock(self):
        """The budget is charged from submit(): a job slowed past its
        timeout surfaces DeadlineExceededError on its handle."""
        plan = FaultPlan().slow_stage(stage="legality", seconds=0.25)
        with injected(plan):
            with BatchCompiler(use_processes=False) as batch:
                handle = batch.submit(build("dl_batch"),
                                      check_legality=True, timeout=0.05)
                exc = handle.exception(timeout=30)
        assert isinstance(exc, DeadlineExceededError)


# -- the circuit breaker -----------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("t", threshold=3, cooldown=30.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opens == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("t", threshold=2, cooldown=30.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_open_refuses_until_cooldown(self):
        breaker = CircuitBreaker("t", threshold=1, cooldown=0.1)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.short_circuits == 1
        time.sleep(0.12)
        assert breaker.allow()            # the half-open probe
        assert breaker.state == STATE_HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker("t", threshold=1, cooldown=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.closes == 1

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("t", threshold=3, cooldown=0.05)
        breaker.trip()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()           # one failure, not three:
        assert breaker.state == STATE_OPEN  # half-open reopens at once
        assert not breaker.allow()

    def test_trip_and_reset(self):
        breaker = CircuitBreaker("t", threshold=3, cooldown=30.0)
        breaker.trip()
        assert breaker.state == STATE_OPEN and not breaker.allow()
        breaker.reset()
        assert breaker.state == STATE_CLOSED and breaker.allow()
        assert breaker.stats()["opens"] == 0

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("TIRAMISU_BREAKER_THRESHOLD", "5")
        monkeypatch.setenv("TIRAMISU_BREAKER_COOLDOWN", "1.5")
        breaker = CircuitBreaker("t")
        assert breaker.threshold == 5 and breaker.cooldown == 1.5
        monkeypatch.setenv("TIRAMISU_BREAKER_THRESHOLD", "-2")
        with pytest.raises(ValueError, match="TIRAMISU_BREAKER_THRESHOLD"):
            CircuitBreaker("t")

    def test_pool_breaker_is_a_process_singleton(self):
        assert pool_breaker() is pool_breaker()
        assert pool_breaker().state == STATE_CLOSED


# -- graceful degradation ----------------------------------------------------

def _have_pool():
    from repro.backends.parallel import get_pool
    return get_pool(2) is not None


class TestBreakerDegradation:
    def test_open_breaker_short_circuits_batch_offload(self, monkeypatch):
        if not _have_pool():
            pytest.skip("no process pool on this host")
        pool_breaker().trip()
        with BatchCompiler(max_workers=2) as batch:
            kernel = batch.submit(build("brk_sc", 3)).result(timeout=60)
        assert batch.stats.breaker_short_circuits == 1
        assert batch.stats.fallbacks == 1
        assert batch.stats.inline_compiles == 1
        assert batch.stats.worker_failures == 0   # the pool was not touched
        # The degraded path is byte-identical to a plain inline compile.
        kernel_registry.clear()
        reference = build("brk_sc", 3).compile("cpu")
        assert kernel.source == reference.source
        assert np.array_equal(kernel()["c"], expected_output(3))

    def test_injected_refusals_trip_the_breaker(self, monkeypatch):
        if not _have_pool():
            pytest.skip("no process pool on this host")
        monkeypatch.setenv("TIRAMISU_BREAKER_THRESHOLD", "3")
        plan = FaultPlan().refuse_pool(op="batch", times=3)
        with injected(plan):
            with BatchCompiler(max_workers=2, max_retries=2) as batch:
                kernel = batch.submit(build("brk_trip", 2)).result(timeout=60)
        # Three injected refusals = the threshold: the breaker is open,
        # and the compile still succeeded inline.
        assert plan.fired("pool-refusal") == 3
        assert batch.stats.worker_failures == 3
        assert pool_breaker().state == STATE_OPEN
        assert np.array_equal(kernel()["c"], expected_output(2))

    def test_open_breaker_forces_sequential_parallel_regions(self):
        if not _have_pool():
            pytest.skip("no process pool on this host")
        def build_par():
            f = Function("brk_par")
            with f:
                i, j = Var("i", 0, 8), Var("j", 0, 8)
                c = Computation("c", [i, j], 2.0 * i + j)
            c.parallelize("i")
            return f

        k_seq = build_par().compile("cpu", num_threads=1)
        out_seq = k_seq()["c"]

        pool_breaker().trip()
        kernel_registry.clear()
        kernel = build_par().compile("cpu", num_threads=2)
        out = kernel()["c"]
        assert np.array_equal(out, out_seq)
        assert kernel.runtime.stats.breaker_blocks >= 1
        assert not kernel.runtime.stats.worker_pids  # nothing offloaded


# -- admission control -------------------------------------------------------

class TestAdmissionControl:
    def test_reject_policy_raises_over_capacity(self):
        plan = FaultPlan().slow_stage(seconds=0.5)
        with injected(plan):
            with BatchCompiler(max_workers=1, use_processes=False,
                               max_pending=1) as batch:
                first = batch.submit(build("adm_a", 1))
                with pytest.raises(AdmissionError, match="max_pending"):
                    batch.submit(build("adm_b", 2))
                assert batch.stats.admission_rejected == 1
                # Dedup costs no capacity: a duplicate of the in-flight
                # job attaches instead of being refused.
                dup = batch.submit(build("adm_a", 1))
                assert dup.result(timeout=30) is first.result(timeout=30)
                assert batch.stats.deduplicated == 1

    def test_block_policy_waits_for_capacity(self):
        plan = FaultPlan().slow_stage(seconds=0.3)
        with injected(plan):
            with BatchCompiler(max_workers=1, use_processes=False,
                               max_pending=1,
                               admission_policy="block") as batch:
                first = batch.submit(build("blk_a", 1))
                t0 = time.monotonic()
                second = batch.submit(build("blk_b", 2))
                waited = time.monotonic() - t0
                assert waited >= 0.15     # held until the first settled
                assert batch.stats.admission_blocked == 1
                assert first.result(timeout=30) is not None
                assert second.result(timeout=30) is not None

    def test_shed_oldest_cancels_the_queued_job(self):
        plan = FaultPlan().slow_stage(seconds=0.5)
        with injected(plan):
            with BatchCompiler(max_workers=1, use_processes=False,
                               max_pending=2,
                               admission_policy="shed-oldest") as batch:
                first = batch.submit(build("shed_a", 1))
                time.sleep(0.1)           # first is now running (slowly)
                second = batch.submit(build("shed_b", 2))
                third = batch.submit(build("shed_c", 3))
                # The running job cannot be cancelled; the queued one is.
                exc = second.exception(timeout=5)
                assert isinstance(exc, AdmissionError)
                assert "shed" in str(exc)
                assert batch.stats.admission_shed == 1
                assert first.result(timeout=30) is not None
                assert third.result(timeout=30) is not None

    def test_shed_handles_appear_in_as_completed(self):
        plan = FaultPlan().slow_stage(seconds=0.5)
        with injected(plan):
            with BatchCompiler(max_workers=1, use_processes=False,
                               max_pending=2,
                               admission_policy="shed-oldest") as batch:
                handles = [batch.submit(build("sc_a", 1))]
                time.sleep(0.1)
                handles.append(batch.submit(build("sc_b", 2)))
                handles.append(batch.submit(build("sc_c", 3)))
                seen = {h.fingerprint for h in
                        batch.as_completed(timeout=30)}
        assert seen == {h.fingerprint for h in handles}

    def test_queued_bytes_bound(self):
        plan = FaultPlan().slow_stage(seconds=0.4)
        with injected(plan):
            with BatchCompiler(max_workers=1, use_processes=False,
                               max_queued_bytes=1) as batch:
                # A single over-sized request still lands on an empty
                # ledger — otherwise it could never run at all.
                first = batch.submit(build("qb_a", 1))
                with pytest.raises(AdmissionError,
                                   match="max_queued_bytes"):
                    batch.submit(build("qb_b", 2))
                assert first.result(timeout=30) is not None

    def test_env_supplies_defaults(self, monkeypatch):
        monkeypatch.setenv("TIRAMISU_MAX_PENDING", "4")
        monkeypatch.setenv("TIRAMISU_ADMISSION_POLICY", "block")
        with BatchCompiler(use_processes=False) as batch:
            assert batch.max_pending == 4
            assert batch.admission_policy == "block"

    def test_bad_configuration_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="admission_policy"):
            BatchCompiler(admission_policy="drop-newest")
        monkeypatch.setenv("TIRAMISU_MAX_PENDING", "0")
        with pytest.raises(ValueError, match="TIRAMISU_MAX_PENDING"):
            BatchCompiler()

    def test_unbounded_by_default(self):
        with BatchCompiler(use_processes=False) as batch:
            assert batch.max_pending is None
            assert batch.max_queued_bytes is None
            for n in range(6):
                batch.submit(build(f"unb_{n}", n + 1))
            assert batch.stats.admission_rejected == 0


# -- disk-tier IO faults -----------------------------------------------------

class TestDiskIOFaults:
    def test_enospc_store_fails_soft(self, tmp_path):
        root = tmp_path / "cache"
        configure(root)
        log = tmp_path / "events.jsonl"
        configure_event_log(str(log))
        plan = FaultPlan().disk_io_error(op="store")
        with injected(plan):
            kernel = build("nospc", 3).compile("cpu")
        # The compile succeeded from memory...
        assert np.array_equal(kernel()["c"], expected_output(3))
        assert plan.fired("disk-io-error") == 1
        # ...no partial artifact or orphaned temp file landed...
        assert not list(root.glob("*.pkl"))
        assert not [n for n in os.listdir(root) if n.startswith(".tmp-")]
        # ...and the failure is journaled with its errno.
        stored = [r for r in read_events(str(log))
                  if r["name"] == "cache.disk.store_error"]
        assert len(stored) == 1
        assert stored[0]["fields"]["errno"] == errno.ENOSPC

    def test_custom_errno_honored(self, tmp_path):
        configure(tmp_path / "cache")
        plan = FaultPlan().disk_io_error(op="store", err=errno.EDQUOT)
        with injected(plan):
            kernel = build("quota", 2).compile("cpu")
        assert kernel()["c"].shape == (8, 8)

    def test_eio_load_reads_as_a_miss(self, tmp_path):
        root = tmp_path / "cache"
        configure(root)
        log = tmp_path / "events.jsonl"
        configure_event_log(str(log))
        build("eio", 2).compile("cpu")          # stores the artifact
        kernel_registry.clear()
        plan = FaultPlan().disk_io_error(op="load")
        with injected(plan):
            kernel = build("eio", 2).compile("cpu")
        # The unreadable artifact read as a plain miss: recompiled.
        assert not kernel.report.cache_hit
        assert not kernel.report.disk_hit
        assert np.array_equal(kernel()["c"], expected_output(2))
        loads = [r for r in read_events(str(log))
                 if r["name"] == "cache.disk.load_error"]
        assert len(loads) == 1
        assert loads[0]["fields"]["errno"] == errno.EIO


# -- quarantine accounting ---------------------------------------------------

def _quarantine_one(cache, key, source):
    cache.put(key, source, "cpu")
    path = cache.path_for(key)
    path.write_bytes(path.read_bytes()[:10])
    assert cache.get(key) is None           # quarantined on probe


class TestQuarantineAccounting:
    def test_stats_count_corpses(self, tmp_path):
        cache = DiskCache(tmp_path)
        _quarantine_one(cache, "k1", "s" * 200)
        stats = cache.stats()
        assert stats["quarantined"] == 1
        assert stats["quarantine_bytes"] > 0

    def test_count_cap_evicts_oldest_corpses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TIRAMISU_CACHE_MAX_QUARANTINE", "2")
        cache = DiskCache(tmp_path)
        for n in range(4):
            corpse = tmp_path / f"dead{n}.quarantine"
            corpse.write_bytes(b"x" * 50)
            os.utime(corpse, (1000 + n, 1000 + n))
        cache.evict_to_limit()
        left = sorted(p.name for p in tmp_path.glob("*.quarantine"))
        assert left == ["dead2.quarantine", "dead3.quarantine"]

    def test_corpse_bytes_count_toward_the_size_budget(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=4096)
        corpse = tmp_path / "dead.quarantine"
        corpse.write_bytes(b"x" * 4000)
        os.utime(corpse, (1000, 1000))
        cache.put("k1", "fresh source", "cpu")
        # put() ran the eviction pass: the corpse paid for the
        # overrun, the live artifact survived.
        assert not corpse.exists()
        assert "k1" in cache

    def test_resolve_max_quarantine_validation(self, monkeypatch):
        assert resolve_max_quarantine() == 8
        monkeypatch.setenv("TIRAMISU_CACHE_MAX_QUARANTINE", "0")
        assert resolve_max_quarantine() == 0
        for bad in ("-1", "many"):
            monkeypatch.setenv("TIRAMISU_CACHE_MAX_QUARANTINE", bad)
            with pytest.raises(ValueError,
                               match="TIRAMISU_CACHE_MAX_QUARANTINE"):
                resolve_max_quarantine()


# -- crash recovery ----------------------------------------------------------

class TestCrashRecovery:
    def test_stale_tmp_files_swept(self, tmp_path):
        cache = DiskCache(tmp_path)
        stale = tmp_path / ".tmp-dead"
        stale.write_bytes(b"partial write")
        os.utime(stale, (1000, 1000))
        fresh = tmp_path / ".tmp-live"
        fresh.write_bytes(b"in flight")
        report = recovery_sweep(cache)
        assert report.tmp_removed == 1
        assert not stale.exists()
        assert fresh.exists()               # inside the grace window

    def test_aged_quarantine_swept(self, tmp_path):
        cache = DiskCache(tmp_path)
        corpse = tmp_path / "old.quarantine"
        corpse.write_bytes(b"x" * 10)
        os.utime(corpse, (1000, 1000))
        report = recovery_sweep(cache, quarantine_max_age=3600.0)
        assert report.quarantine_removed == 1
        assert not corpse.exists()

    def test_torn_journal_truncated(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        log = tmp_path / "events.jsonl"
        log.write_text('{"name": "a", "cat": "compile"}\n{"name": "b', )
        configure_event_log(str(log))
        report = recovery_sweep(cache)
        assert report.journal_bytes_truncated == len('{"name": "b')
        records, torn = read_journal(str(log))
        assert torn is None
        # The torn record is gone; the sweep journaled its own repair.
        assert records[0]["name"] == "a"
        assert records[-1]["name"] == "resilience.recovery.sweep"
        assert "b" not in [r["name"] for r in records]

    def test_total_repairs(self):
        from repro.driver.recovery import RecoveryReport
        assert RecoveryReport().total_repairs == 0
        assert RecoveryReport(tmp_removed=2, quarantine_removed=1,
                              journal_bytes_truncated=17).total_repairs == 4

    def test_sweep_runs_once_per_activation(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        stale = root / ".tmp-orphan"
        stale.write_bytes(b"x")
        os.utime(stale, (1000, 1000))
        configure(root)
        cache = active_disk_cache()
        assert cache is not None
        assert not stale.exists()           # swept on activation
        late = root / ".tmp-late"
        late.write_bytes(b"y")
        os.utime(late, (1000, 1000))
        assert active_disk_cache() is cache
        assert late.exists()                # same instance: no re-sweep


# -- torn-journal tolerance --------------------------------------------------

class TestTornJournal:
    GOOD = '{"name": "a", "cat": "compile"}\n{"name": "b", "cat": "cache"}\n'

    def test_read_events_drops_the_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(self.GOOD + '{"name": "c", "ca')
        assert [r["name"] for r in read_events(str(path))] == ["a", "b"]

    def test_read_journal_surfaces_the_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(self.GOOD + '{"name": "c", "ca')
        records, torn = read_journal(str(path))
        assert len(records) == 2
        assert torn == '{"name": "c", "ca'

    def test_parseable_unterminated_final_line_kept(self, tmp_path):
        # Only the newline went missing: the record itself is intact.
        path = tmp_path / "j.jsonl"
        path.write_text(self.GOOD + '{"name": "c", "cat": "cache"}')
        records, torn = read_journal(str(path))
        assert torn is None
        assert [r["name"] for r in records] == ["a", "b", "c"]

    def test_interior_malformed_line_still_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"name": "a"}\nnot json\n{"name": "b"}\n')
        with pytest.raises(ValueError, match="j.jsonl:2"):
            read_events(str(path))

    def test_repair_journal_truncates_and_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(self.GOOD + '{"torn')
        assert repair_journal(str(path)) == len('{"torn')
        assert path.read_text() == self.GOOD
        assert repair_journal(str(path)) == 0
        assert repair_journal(str(tmp_path / "absent.jsonl")) == 0


# -- the quick chaos soak ----------------------------------------------------

TERMINAL_ERRORS = (DeadlineExceededError, AdmissionError,
                   WorkerFailureError)


def _run_soak_plan(seed, tmp_path):
    """One seeded chaos round over a small batch; returns the list of
    (scale, outcome) pairs where outcome is a kernel or an error."""
    kernel_registry.clear()
    reset_configuration()
    root = tmp_path / f"cache{seed}"
    configure(root)
    log = tmp_path / f"events{seed}.jsonl"
    configure_event_log(str(log))
    rng = np.random.default_rng(seed)
    plan = FaultPlan(seed=seed)
    if rng.random() < 0.7:
        plan.slow_stage(seconds=0.15,
                        times=int(rng.integers(1, 3)))
    if rng.random() < 0.5:
        plan.disk_io_error(op="store",
                           times=int(rng.integers(1, 3)))
    if rng.random() < 0.5:
        plan.refuse_pool(times=int(rng.integers(1, 3)))
    outcomes = []
    with injected(plan):
        with BatchCompiler(max_workers=2, use_processes=False,
                           max_pending=2,
                           admission_policy="reject") as batch:
            handles = []
            for n in range(6):
                scale = (n % 3) + 1
                options = {}
                if rng.random() < 0.4:
                    options["timeout"] = 0.05
                try:
                    handle = batch.submit(
                        build(f"soak{seed}_{scale}", scale), **options)
                except AdmissionError as err:
                    outcomes.append((scale, err))
                    continue
                handles.append((scale, handle))
            for scale, handle in handles:
                exc = handle.exception(timeout=60)
                outcomes.append((scale, exc if exc is not None
                                 else handle.result()))
    # Invariants every round must hold, whatever fired:
    assert len(outcomes) == 6
    for scale, outcome in outcomes:
        if isinstance(outcome, BaseException):
            assert isinstance(outcome, TERMINAL_ERRORS), outcome
        else:
            # Survivors are bit-identical to a fault-free compile.
            assert np.array_equal(outcome()["c"], expected_output(scale))
    # No torn journal, no orphaned temp files, no partial artifacts.
    _, torn = read_journal(str(log))
    assert torn is None
    assert not [n for n in os.listdir(root) if n.startswith(".tmp-")]
    reset_event_log_configuration()
    reset_configuration()
    return outcomes


class TestChaosSoakQuick:
    def test_seeded_rounds_reach_exactly_one_terminal_state(self, tmp_path):
        for seed in range(6):
            _run_soak_plan(seed, tmp_path)
