"""Reified scheduling actions: the move set of the autoscheduler.

Each action names one Table-II scheduling command applied to one
computation, with computations referenced by name and loop levels by
position in the computation's *current* ``time_names`` — positions are
interpreted against the state left by the preceding actions of a
:class:`~repro.autosched.plan.SchedulePlan`, so a serialized action list
replays deterministically.  Actions are frozen dataclasses with a JSON
form (``to_json``/``from_json``); the ``kind`` registry makes the JSON
round-trip total and makes unknown kinds fail loudly.

The move set mirrors what the search enumerates (ISSUE/paper Table II):
fuse-at-level, interchange, tile, vectorize, unroll, parallelize.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Type

from repro.core.errors import TiramisuError


class ActionError(TiramisuError, ValueError):
    """A malformed or unknown schedule action."""


_ACTION_KINDS: Dict[str, Type["ScheduleAction"]] = {}


def register_action(cls):
    """Class decorator: make an action kind JSON-resolvable."""
    if not getattr(cls, "kind", ""):
        raise ActionError(f"action class {cls!r} must define a 'kind'")
    _ACTION_KINDS[cls.kind] = cls
    return cls


class ScheduleAction:
    """Base class for one reified scheduling command.

    ``apply(fn)`` performs the command on the live function and may
    raise :class:`~repro.core.errors.ScheduleError` when the command is
    structurally invalid (bad level, non-consecutive tile dims);
    callers that need atomicity wrap it in a snapshot (see
    :meth:`repro.autosched.plan.SchedulePlan.push`).
    """

    kind: str = ""

    def apply(self, fn) -> None:
        raise NotImplementedError

    def to_json(self) -> Dict[str, object]:
        d: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            d[f.name] = getattr(self, f.name)
        return d

    @staticmethod
    def from_json(data: Dict[str, object]) -> "ScheduleAction":
        if not isinstance(data, dict) or "kind" not in data:
            raise ActionError(f"schedule action needs a 'kind': {data!r}")
        payload = dict(data)
        kind = payload.pop("kind")
        cls = _ACTION_KINDS.get(kind)
        if cls is None:
            raise ActionError(
                f"unknown schedule action kind {kind!r}; known kinds: "
                f"{', '.join(sorted(_ACTION_KINDS))}")
        expected = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        if set(payload) != expected:
            raise ActionError(
                f"action {kind!r} expects fields {sorted(expected)}, "
                f"got {sorted(payload)}")
        return cls(**payload)

    def __repr__(self):
        args = ", ".join(f"{f.name}={getattr(self, f.name)!r}"
                         for f in fields(self))  # type: ignore[arg-type]
        return f"{type(self).__name__}({args})"


def _comp(fn, name: str):
    try:
        return fn.find(name)
    except KeyError:
        raise ActionError(
            f"{fn.name}: no computation named {name!r}") from None


@register_action
@dataclass(frozen=True, repr=False)
class Fuse(ScheduleAction):
    """Order ``consumer`` after ``producer`` sharing loops 0..level."""

    consumer: str
    producer: str
    level: int
    kind = "fuse"

    def apply(self, fn) -> None:
        cons = _comp(fn, self.consumer)
        prod = _comp(fn, self.producer)
        depth = min(len(cons.time_names), len(prod.time_names))
        if not -1 <= self.level < depth:
            raise ActionError(
                f"fuse {self.producer}->{self.consumer}: level "
                f"{self.level} out of range (shared depth {depth})")
        fn.order_after(cons, prod, self.level)


@register_action
@dataclass(frozen=True, repr=False)
class Interchange(ScheduleAction):
    computation: str
    level1: int
    level2: int
    kind = "interchange"

    def apply(self, fn) -> None:
        _comp(fn, self.computation).interchange(self.level1, self.level2)


@register_action
@dataclass(frozen=True, repr=False)
class Tile(ScheduleAction):
    """Tile two consecutive levels with a size1 x size2 block."""

    computation: str
    level1: int
    level2: int
    size1: int
    size2: int
    kind = "tile"

    def apply(self, fn) -> None:
        if self.size1 < 2 or self.size2 < 2:
            raise ActionError(
                f"tile sizes must be >= 2, got "
                f"{self.size1}x{self.size2}")
        _comp(fn, self.computation).tile(
            self.level1, self.level2, self.size1, self.size2)


@register_action
@dataclass(frozen=True, repr=False)
class Vectorize(ScheduleAction):
    computation: str
    level: int
    length: int
    kind = "vectorize"

    def apply(self, fn) -> None:
        if self.length < 2:
            raise ActionError(
                f"vector length must be >= 2, got {self.length}")
        _comp(fn, self.computation).vectorize(self.level, self.length)


@register_action
@dataclass(frozen=True, repr=False)
class Unroll(ScheduleAction):
    computation: str
    level: int
    factor: int
    kind = "unroll"

    def apply(self, fn) -> None:
        if self.factor < 2:
            raise ActionError(
                f"unroll factor must be >= 2, got {self.factor}")
        _comp(fn, self.computation).unroll(self.level, self.factor)


@register_action
@dataclass(frozen=True, repr=False)
class Parallelize(ScheduleAction):
    computation: str
    level: int
    kind = "parallelize"

    def apply(self, fn) -> None:
        _comp(fn, self.computation).parallelize(self.level)
