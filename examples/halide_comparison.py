#!/usr/bin/env python3
"""Side-by-side: Tiramisu's polyhedral model vs Halide's intervals.

Demonstrates the three Section VI-B cases where the representation
matters, using the bundled mini-Halide (repro.halide_mini):

1. edgeDetector's cyclic dataflow — Tiramisu runs it, Halide rejects it;
2. ticket #2373's triangular iteration space — Tiramisu generates exact
   bounds, Halide's interval inference over-approximates and fails;
3. legal-but-conservatively-refused fusion (compute_with) — Tiramisu's
   dependence analysis proves it legal.

Run:  python examples/halide_comparison.py
"""

import numpy as np

from repro import Computation, Function, Var
from repro.halide_mini import (BoundsAssertion, Func, HalideError, HVar,
                               ImageParam, Pipeline)
from repro.ir import select
from repro.kernels import build_edge_detector, build_ticket2373

# -- 1. cyclic dataflow -------------------------------------------------------

print("1. edgeDetector (cyclic dataflow)")
bundle = build_edge_detector()
assert bundle.verify()
print("   Tiramisu: runs, matches reference")

x = HVar("x")
a, b = Func("ring"), Func("img2")
a.define([x], b(x) + 1)
b.define([x], a(x) + 1)
try:
    Pipeline([b])
    raise SystemExit("unexpected: Halide accepted a cycle")
except HalideError as e:
    print(f"   Halide:   rejected — {e}")

# -- 2. triangular iteration space (ticket #2373) -----------------------------

print("\n2. ticket #2373 (non-rectangular iteration space)")
bundle = build_ticket2373()
assert bundle.verify()
print("   Tiramisu: exact bounds, runs, matches reference")

r = HVar("r")
inp = ImageParam("inp", 1)
h = Func("h").define([x, r], select(x.expr() >= r.expr(),
                                    inp(x - r), 0.0))
try:
    Pipeline([h]).realize({"h": (16, 16)},
                          {"inp": np.zeros(8, np.float32)})
    raise SystemExit("unexpected: Halide bounds inference succeeded")
except BoundsAssertion as e:
    print(f"   Halide:   failed at execution — {e}")

# -- 3. fusion legality --------------------------------------------------------

print("\n3. shifted producer-consumer fusion")
with Function("fuse") as fn:
    iw, i = Var("iw", 0, 64), Var("i", 1, 64)
    prod = Computation("prod", [iw], 1.0 * iw)
    cons = Computation("cons", [i], None)
    cons.set_expression(prod(i - 1) * 2.0)
cons.after(prod, "iw")        # fuse at the shared loop
fn.check_legality()           # dependence analysis proves it legal
out = fn.compile("cpu")()["cons"]
assert np.allclose(out[1:], np.arange(63) * 2.0)
print("   Tiramisu: fused (dependence analysis proves legality), correct")

img = ImageParam("img", 1)
c1 = Func("c1").define([x], img(x) * 1.0)
c2 = Func("c2").define([x], c1(x - 1) * 2.0)
try:
    c2.compute_with(c1)
    raise SystemExit("unexpected: Halide fused")
except HalideError as e:
    print(f"   Halide:   refused — {e}")

print("\nOK: all three representation gaps reproduced")
