"""Code generation correctness: the generated loop nest must execute each
scheduled instance exactly once, in lexicographic time order.

These tests instrument generated kernels by storing iteration counters,
and compare against direct enumeration of the instance sets — the
"once and only once ... following the lexicographical ordering" property
of paper Section V-A.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.codegen.ast import Loop, Stmt, loops_in, stmts_in
from repro.isl import count


def visit_counter(schedule_fn=None, n=7, m=5):
    """Build c[i,j] = c[i,j] + 1 over an n x m domain, apply a schedule,
    run, and return the visit-count array."""
    f = Function("f")
    with f:
        i, j = Var("i", 0, n), Var("j", 0, m)
        c = Computation("c", [i, j], None)
        c.set_expression(c(i, j) + 1.0)
    if schedule_fn:
        schedule_fn(c)
    k = f.compile("cpu")
    out = k()["c"]
    return out


class TestOnceAndOnlyOnce:
    def test_identity_schedule(self):
        out = visit_counter()
        assert (out == 1).all()

    def test_tiled(self):
        out = visit_counter(lambda c: c.tile("i", "j", 3, 2))
        assert (out == 1).all()

    def test_tiled_nondivisible(self):
        out = visit_counter(lambda c: c.tile("i", "j", 4, 3), n=10, m=7)
        assert (out == 1).all()

    def test_interchanged(self):
        out = visit_counter(lambda c: c.interchange("i", "j"))
        assert (out == 1).all()

    def test_skewed(self):
        out = visit_counter(lambda c: c.skew("i", "j", 2))
        assert (out == 1).all()

    def test_shifted(self):
        out = visit_counter(lambda c: c.shift("i", 3))
        assert (out == 1).all()

    def test_split_then_interchange(self):
        def sched(c):
            c.split("i", 2, "i0", "i1")
            c.interchange("i1", "j")
        out = visit_counter(sched)
        assert (out == 1).all()

    @given(st.integers(2, 5), st.integers(2, 5),
           st.integers(2, 3), st.integers(2, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_tile_sizes(self, n, m, t1, t2):
        out = visit_counter(lambda c: c.tile("i", "j", t1, t2), n=n, m=m)
        assert (out == 1).all()


class TestLexicographicOrder:
    def test_sequence_order_observable(self):
        """b overwrites a's results; final buffer must reflect order."""
        f = Function("f")
        with f:
            i = Var("i", 0, 6)
            shared = Buffer("s", [6])
            a = Computation("a", [i], 1.0)
            b = Computation("b", [Var("i2", 0, 6)], 2.0)
            a.store_in(shared, [i])
            b.store_in(shared, [Var("i2", 0, 6)])
        b.after(a)
        out = f.compile("cpu")()
        assert (out["s"] == 2).all()
        # Reverse the order: a should win.
        f2 = Function("f2")
        with f2:
            i = Var("i", 0, 6)
            shared = Buffer("s", [6])
            a = Computation("a", [i], 1.0)
            b = Computation("b", [Var("i2", 0, 6)], 2.0)
            a.store_in(shared, [i])
            b.store_in(shared, [Var("i2", 0, 6)])
        a.after(b)
        out2 = f2.compile("cpu")()
        assert (out2["s"] == 1).all()

    def test_fused_loop_interleaves(self):
        """a and b fused at level i: per-i interleaving means b(i) sees
        a(i) already computed even though b < a in declaration order is
        false... (producer-consumer through fusion)."""
        f = Function("f")
        with f:
            i = Var("i", 0, 5)
            a = Computation("a", [i], None)
            a.set_expression(2.0)
            b = Computation("b", [Var("i2", 0, 5)], None)
            b.set_expression(a(Var("i2", 0, 5)) * 10.0)
        b.after(a, "i")
        out = f.compile("cpu")()
        assert (out["b"] == 20).all()
        # AST shape: a single shared loop containing both statements.
        ast = f.lower()
        loops = loops_in(ast)
        assert len(loops) == 1
        assert len(stmts_in(loops[0].body)) == 2


class TestNonRectangular:
    def test_triangular_domain(self):
        """ticket #2373: triangular iteration spaces generate exact
        bounds, no over-approximation."""
        f = Function("f")
        with f:
            i = Var("i", 0, 6)
            j = Var("j", 0, i + 1)
            c = Computation("c", [i, j], 1.0)
        out = f.compile("cpu")()["c"]
        for a in range(6):
            for b in range(6):
                assert out[a, b] == (1.0 if b <= a else 0.0)

    def test_triangular_tiled(self):
        f = Function("f")
        with f:
            i = Var("i", 0, 9)
            j = Var("j", 0, i + 1)
            c = Computation("c", [i, j], None)
            c.set_expression(c(i, j) + 1.0)
        c.tile("i", "j", 4, 4)
        out = f.compile("cpu")()["c"]
        for a in range(9):
            for b in range(9):
                assert out[a, b] == (1.0 if b <= a else 0.0)

    def test_dependent_bounds_with_params(self):
        N = Param("N")
        f = Function("f", params=[N])
        with f:
            i = Var("i", 0, N)
            j = Var("j", i, N)   # j >= i
            c = Computation("c", [i, j], 1.0)
        out = f.compile("cpu")(N=5)["c"]
        for a in range(5):
            for b in range(5):
                assert out[a, b] == (1.0 if b >= a else 0.0)


class TestGuards:
    def test_no_guards_for_rectangular(self):
        f = Function("f")
        with f:
            c = Computation("c", [Var("i", 0, 8), Var("j", 0, 8)], 1.0)
        ast = f.lower()
        for stmt in stmts_in(ast):
            assert stmt.guards == []

    def test_no_guards_after_plain_tiling(self):
        f = Function("f")
        with f:
            c = Computation("c", [Var("i", 0, 8), Var("j", 0, 8)], 1.0)
        c.tile("i", "j", 4, 4)
        ast = f.lower()
        for stmt in stmts_in(ast):
            assert stmt.guards == []


class TestPredicates:
    def test_nonaffine_predicate_guards_statement(self):
        """Section V-B: non-affine conditionals become predicates that are
        re-inserted at code generation."""
        f = Function("f")
        with f:
            i = Var("i", 0, 10)
            inp = Input("inp", [Var("x", 0, 10)])
            c = Computation("c", [i], 5.0)
            c.add_predicate(inp(i) > 0.5)
        k = f.compile("cpu")
        data = np.array([0.0, 1.0] * 5)
        out = k(inp=data)["c"]
        assert (out == np.where(data > 0.5, 5.0, 0.0)).all()


class TestInline:
    def test_inlined_producer_disappears(self):
        f = Function("f")
        with f:
            i = Var("i", 0, 6)
            a = Computation("a", [i], None)
            a.set_expression(3.0)
            b = Computation("b", [Var("x", 0, 6)], None)
            b.set_expression(a(Var("x", 0, 6)) + 1.0)
        a.inline()
        k = f.compile("cpu")
        out = k()["b"]
        assert (out == 4.0).all()
        assert "_a_b" not in k.source
