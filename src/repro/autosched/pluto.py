"""The Pluto-style greedy strategy (the PENCIL / Pluto / Polly
comparator of the paper — DESIGN.md substitution table).

The heuristic mirrors what Section II-a describes: "the Pluto automatic
scheduling algorithm tries to minimize the distance between producer and
consumer statements while maximizing outermost parallelism, but it does
not consider data layout, redundant computations, or the complexity of
the control of the generated code".  Concretely:

1. **Fusion-first**: for each producer-consumer pair, fuse at the
   deepest loop level that dependence analysis proves legal (minimizing
   reuse distance) — even when that requires permuting loops, and even
   when the permutation destroys spatial locality (the paper's gaussian
   anecdote).
2. **Tiling**: tile the two outermost dimensions of every nest.
3. **Outermost parallelism**: parallelize the outermost loop not
   carrying a dependence.
4. **Never**: vectorization, unrolling, array packing, register
   blocking, or full/partial-tile separation — the optimizations the
   paper lists as missing from fully automatic compilers.

Since the plan redesign the greedy pass builds a
:class:`~repro.autosched.plan.SchedulePlan` like every other strategy:
each probe is a ``push`` and each backtrack a snapshot-restoring
``pop``, which fixes the old hand-rolled undo (re-calling
``interchange`` to reverse itself left ``fn._beta``/dependence state
stale when the second interchange raised).  Use it through
``autoschedule(fn, strategy="pluto")``; the legacy in-place
:func:`pluto_schedule` survives as a deprecation shim until 2.0.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.computation import Computation
from repro.core.deps import (carried_at_level, check_schedule_legality,
                             compute_dependences)
from repro.core.errors import IllegalScheduleError, ScheduleError

from .actions import Fuse, Interchange, Parallelize, Tile
from .api import AutoScheduleResult, Strategy, register_strategy
from .plan import SchedulePlan


@dataclass
class AutoScheduleReport:
    """The legacy per-decision ledger of the greedy pass."""

    fused: List[Tuple[str, str, int]] = field(default_factory=list)
    tiled: List[str] = field(default_factory=list)
    parallelized: List[Tuple[str, int]] = field(default_factory=list)
    interchanged: List[str] = field(default_factory=list)
    candidates: int = 0
    pruned_illegal: int = 0


def _schedulable(fn) -> List[Computation]:
    from .search import schedulable_computations
    return schedulable_computations(fn)


def _producer_pairs(fn) -> List[Tuple[Computation, Computation]]:
    from .search import producer_pairs
    return producer_pairs(fn)


def _try_fuse(fn, plan: SchedulePlan, prod: Computation,
              cons: Computation, report: AutoScheduleReport,
              allow_interchange: bool = True) -> bool:
    """Fuse consumer after producer at the deepest legal shared level.

    Every probe goes through the plan: a failed fusion is a ``pop``
    (exact snapshot restore), including the interchange backtrack —
    the old code re-called ``interchange`` to undo itself, which left
    stale ``_beta``/schedule state behind when that second interchange
    raised partway.
    """
    max_level = min(len(prod.time_names), len(cons.time_names)) - 1
    for level in range(max_level, -1, -1):
        report.candidates += 1
        try:
            plan.push(fn, Fuse(cons.name, prod.name, level))
        except ScheduleError:
            continue
        try:
            check_schedule_legality(fn)
            report.fused.append((prod.name, cons.name, level))
            return True
        except IllegalScheduleError:
            plan.pop(fn)
            report.pruned_illegal += 1
    if allow_interchange and len(cons.time_names) >= 2:
        # Pluto willingly permutes loops to enable fusion (minimizing
        # reuse distance), ignoring the spatial-locality cost — the
        # suboptimal gaussian decision of Section VI-B.
        report.candidates += 1
        try:
            plan.push(fn, Interchange(cons.name, 0, 1))
        except ScheduleError:
            return False
        report.interchanged.append(cons.name)
        if _try_fuse(fn, plan, prod, cons, report,
                     allow_interchange=False):
            return True
        plan.pop(fn)
        report.interchanged.pop()
    return False


def build_pluto_plan(fn, tile_size: int = 32, fuse: bool = True
                     ) -> Tuple[SchedulePlan, AutoScheduleReport]:
    """Run the greedy pass and return (plan, report); ``fn`` is left
    pristine (the plan is built applied, then undone)."""
    plan = SchedulePlan()
    report = AutoScheduleReport()
    try:
        if fuse:
            for prod, cons in _producer_pairs(fn):
                _try_fuse(fn, plan, prod, cons, report)
        for comp in _schedulable(fn):
            if len(comp.time_names) >= 2:
                report.candidates += 1
                try:
                    plan.push(fn, Tile(comp.name, 0, 1,
                                       tile_size, tile_size))
                    report.tiled.append(comp.name)
                except ScheduleError:
                    pass
        deps = compute_dependences(fn)
        beta = fn.resolve_order()
        depth = fn.max_depth()
        sched: Dict[str, object] = {}
        rels: Dict[int, object] = {}
        for comp in _schedulable(fn):
            for level in range(min(2, len(comp.time_names))):
                if not carried_at_level(fn, comp, level, deps=deps,
                                        beta=beta, depth=depth,
                                        sched=sched, rels=rels):
                    plan.push(fn, Parallelize(comp.name, level))
                    report.parallelized.append((comp.name, level))
                    break
        # Tiling/parallelization after fusion should be legal; if not,
        # fail loudly — the auto-scheduler must never emit wrong code.
        check_schedule_legality(fn)
    finally:
        if plan.applied:
            plan.undo(fn)
    return plan, report


@register_strategy
class PlutoStrategy(Strategy):
    """``strategy="pluto"``: the one-shot greedy heuristic (no search,
    no cost model — the paper's fully-automatic baseline)."""

    name = "pluto"

    def run(self, fn, *, oracle=None, budget: Optional[int] = None,
            params: Optional[Dict[str, int]] = None,
            tile_size: int = 32, fuse: bool = True,
            **kw) -> AutoScheduleResult:
        plan, report = build_pluto_plan(fn, tile_size=tile_size,
                                        fuse=fuse)
        result = AutoScheduleResult(
            strategy=self.name, plan=plan, report=report,
            candidates=report.candidates,
            pruned_illegal=report.pruned_illegal)
        if oracle is not None:
            result.baseline_cost = oracle.score(fn, SchedulePlan())
            result.best_cost = oracle.score(fn, plan)
        return result


def pluto_schedule(fn, tile_size: int = 32,
                   fuse: bool = True) -> AutoScheduleReport:
    """Deprecated: apply the greedy automatic schedule to ``fn`` in
    place and return the legacy report.

    .. deprecated:: 1.x
       Use ``repro.autosched.autoschedule(fn, strategy="pluto")``, which
       returns a reified, undoable
       :class:`~repro.autosched.plan.SchedulePlan` instead of mutating
       ``fn``.  This shim will be removed in 2.0.
    """
    warnings.warn(
        "pluto_schedule() is deprecated and will be removed in 2.0; "
        "use repro.autosched.autoschedule(fn, strategy='pluto') and "
        "apply (or compile with) the returned plan",
        DeprecationWarning, stacklevel=2)
    plan, report = build_pluto_plan(fn, tile_size=tile_size, fuse=fuse)
    plan.apply(fn)
    return report
