"""Observability overhead: profiling off must cost nothing.

``profile=False`` (the default) is required to emit byte-identical
source to a pre-observability build — the guarantee is structural, and
this harness checks it both ways: the emitted artifacts are identical,
and best-of-N wall clock of the two compiled kernels stays within 5%.
A second smoke test exports one profiled, traced run and checks the
Chrome-trace JSON holds compile-stage, loop-nest, parallel, and worker
spans on one timeline.

The same contract covers the telemetry export layer (PR 8): with no
``TIRAMISU_EVENT_LOG`` / ``TIRAMISU_METRICS_FILE`` in the environment
the journal probes and the autoflush hook must keep compile+run within
5% of a build with telemetry stubbed out entirely, and *enabling* them
must never change the emitted kernel source — telemetry observes the
compile, it does not participate in it.
"""

import contextlib
import json
import time

import numpy as np

from conftest import bench_note, print_table
from repro.kernels.linalg import build_sgemm
from repro.obs import (CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER,
                       get_tracer, read_events, write_trace_file)

PARAMS = {"N": 96, "M": 96, "K": 96}
REPEATS = 7


def _best_of(kernel, inputs, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        fresh = {k: np.copy(v) for k, v in inputs.items()}
        t0 = time.perf_counter()
        kernel(**fresh, **PARAMS)
        best = min(best, time.perf_counter() - t0)
    return best


class TestProfileOffOverhead:
    def test_profile_false_artifacts_identical(self):
        base = build_sgemm()
        k_base = base.function.compile("cpu")
        off = build_sgemm()
        # cache=False so the source is emitted independently rather
        # than served from the registry entry the baseline created
        k_off = off.function.compile("cpu", profile=False, cache=False)
        assert k_off.source == k_base.source
        assert k_off.report.fingerprint == k_base.report.fingerprint

    def test_profile_false_within_5_percent(self):
        base = build_sgemm()
        k_base = base.function.compile("cpu")
        off = build_sgemm()
        k_off = off.function.compile("cpu", profile=False, cache=False)
        inputs = base.make_inputs(PARAMS, np.random.default_rng(0))
        _best_of(k_base, inputs, repeats=2)   # warm both code paths
        _best_of(k_off, inputs, repeats=2)
        # Interleave the two measurements so host-load drift across the
        # benchmark suite hits both kernels equally; best-of cancels the
        # remaining spikes (the kernels are byte-identical, so the true
        # ratio is 1.0 by construction).
        t_base = t_off = float("inf")
        for _ in range(REPEATS):
            t_base = min(t_base, _best_of(k_base, inputs, repeats=1))
            t_off = min(t_off, _best_of(k_off, inputs, repeats=1))
        ratio = t_off / t_base
        print_table("profiling overhead (off)", {
            "baseline best (ms)": f"{t_base * 1e3:.3f}",
            "profile=False best (ms)": f"{t_off * 1e3:.3f}",
            "ratio": f"{ratio:.3f}",
        })
        assert ratio <= 1.05, (t_base, t_off)
        bench_note("profile_off_overhead_ratio", ratio)


@contextlib.contextmanager
def _stubbed_telemetry():
    """Replace the pipeline's journal probes and the autoflush hook
    with no-ops — the closest measurable stand-in for a build that
    never had the telemetry layer."""
    from repro.driver import pipeline as pipeline_mod
    from repro.obs import export as export_mod
    saved_emit = pipeline_mod.emit_event
    saved_flush = export_mod.autoflush
    pipeline_mod.emit_event = lambda *a, **k: False
    export_mod.autoflush = lambda: None
    try:
        yield
    finally:
        pipeline_mod.emit_event = saved_emit
        export_mod.autoflush = saved_flush


def _compile_and_run_seconds():
    bundle = build_sgemm()
    inputs = bundle.make_inputs(PARAMS, np.random.default_rng(0))
    t0 = time.perf_counter()
    kernel = bundle.function.compile("cpu", cache=False)
    kernel(**{k: np.copy(v) for k, v in inputs.items()}, **PARAMS)
    return time.perf_counter() - t0


class TestTelemetryOffOverhead:
    def test_disabled_journal_and_flusher_within_5_percent(
            self, monkeypatch):
        monkeypatch.delenv("TIRAMISU_EVENT_LOG", raising=False)
        monkeypatch.delenv("TIRAMISU_METRICS_FILE", raising=False)
        # Warm both paths (imports, pool state) before measuring.
        _compile_and_run_seconds()
        with _stubbed_telemetry():
            _compile_and_run_seconds()
        t_disabled = t_stubbed = float("inf")
        for _ in range(5):
            t_disabled = min(t_disabled, _compile_and_run_seconds())
            with _stubbed_telemetry():
                t_stubbed = min(t_stubbed, _compile_and_run_seconds())
        ratio = t_disabled / t_stubbed
        print_table("telemetry overhead (disabled)", {
            "stubbed best (ms)": f"{t_stubbed * 1e3:.3f}",
            "disabled best (ms)": f"{t_disabled * 1e3:.3f}",
            "ratio": f"{ratio:.3f}",
        })
        bench_note("telemetry_off_overhead_ratio", ratio)
        assert ratio <= 1.05, (t_stubbed, t_disabled)

    def test_enabling_telemetry_never_changes_emitted_source(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("TIRAMISU_EVENT_LOG", raising=False)
        monkeypatch.delenv("TIRAMISU_METRICS_FILE", raising=False)
        base = build_sgemm()
        k_base = base.function.compile("cpu", cache=False)

        journal = tmp_path / "events.jsonl"
        exposition = tmp_path / "metrics.prom"
        monkeypatch.setenv("TIRAMISU_EVENT_LOG", str(journal))
        monkeypatch.setenv("TIRAMISU_METRICS_FILE", str(exposition))
        on = build_sgemm()
        k_on = on.function.compile("cpu", cache=False)

        assert k_on.source == k_base.source
        assert k_on.report.fingerprint == k_base.report.fingerprint
        # ... and the telemetry really was live, not silently off.
        names = {e["name"] for e in read_events(str(journal))}
        assert {"compile.begin", "compile.end"} <= names
        assert exposition.exists()


class TestTraceExportSmoke:
    def test_trace_json_holds_all_span_kinds(self, tmp_path):
        tracer = get_tracer()
        tracer.clear()
        tracer.set_enabled(True)
        try:
            bundle = build_sgemm()
            # parallelize only acc: scale's nest stays sequential, so
            # the export shows loop-nest AND parallel/worker spans
            bundle.computations["acc"].parallelize("i")
            kernel = bundle.function.compile(
                "cpu", profile=True, num_threads=2, cache=False)
            inputs = bundle.make_inputs(PARAMS,
                                        np.random.default_rng(0))
            kernel(**{k: np.copy(v) for k, v in inputs.items()},
                   **PARAMS)
            dest = tmp_path / "trace.json"
            assert write_trace_file(str(dest)) == str(dest)
        finally:
            tracer.set_enabled(None)
            tracer.clear()
        doc = json.loads(dest.read_text())
        events = doc["traceEvents"]
        cats = {e["cat"] for e in events}
        assert {CAT_COMPILE, CAT_LOOP, CAT_PARALLEL, CAT_WORKER} <= cats
        assert all(e["ph"] == "X" for e in events)
        stage_names = {e["name"] for e in events
                       if e["cat"] == CAT_COMPILE}
        assert "compile:emit" in stage_names
        print_table("trace export", {
            "events": len(events),
            "categories": ", ".join(sorted(cats)),
        })
