"""Emission of executable Python/NumPy source from the loop AST.

This is the reproduction's stand-in for the paper's LLVM backend: the
AST from :mod:`repro.codegen.isl_to_ast` is lowered to Python source,
compiled with :func:`compile`, and wrapped in a callable kernel.

Loop dimensions tagged ``vector`` are lowered to NumPy array arithmetic
(the loop variable becomes an ``np.arange`` vector and the statement is
evaluated lane-parallel), provided the statement is safe to vectorize:
no guards or predicate, the vector variable appears in the statement's
store indices, and any read of the stored buffer uses exactly the store
indices (no loop-carried dependence along the vector lanes).

Top-level loop dimensions tagged ``parallel`` are lowered to a *chunked
worker function*: the loop body is emitted as a standalone
``_par_body_k(_bufs, _params, _lo, _hi)`` function and the loop itself
becomes a dispatch that hands contiguous chunks of the iteration range
to the runtime's worker pool (:mod:`repro.backends.parallel`) when one
is attached, and calls the body sequentially otherwise.  Offload is
only emitted when the body is safe to run in another process: a pure
compute nest (no runtime operations anywhere in the function, no
shared-memory staging buffers) whose loop sits at the outermost level,
so every name the body needs comes from ``_bufs``/``_params`` alone.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import CodegenError
from repro.ir.expr import (Access, BinOp, BufferRead, Call, Cast, Const,
                           Expr, IterVar, ParamRef, Select, UnOp)
from repro.isl import Constraint, LinExpr
from repro.isl.constraint import EQ
from repro.isl.linexpr import OUT, PARAM

from .ast import Block, Loop, Node, Stmt

_PRELUDE = '''\
import numpy as np

def _cdiv(a, b):
    return -((-a) // b)
'''

#: Extra prelude for ``profile=True`` source only — the default path
#: never sees it (emitted code stays byte-identical with profiling off).
_PROFILE_PRELUDE = '''\
from time import perf_counter_ns as _now_ns
'''


def profile_counted_comps(fn) -> List[Tuple[str, int]]:
    """``(name, bytes-per-store)`` for every computation a profiled
    kernel counts: active, code-generating value computations
    (operations and inlined computations execute no countable store)."""
    from repro.core.computation import Input, Operation
    out: List[Tuple[str, int]] = []
    for comp in fn.active_computations():
        if isinstance(comp, (Input, Operation)) or comp.expr is None:
            continue
        out.append((comp.name, comp.dtype.bits // 8))
    return out


def lin_to_py(le: LinExpr, params: Sequence[str]) -> str:
    """A LinExpr over time dims/params as a Python expression string."""
    parts: List[str] = []
    for (kind, idx), c in le.coeffs.items():
        c = int(c)
        if kind == OUT:
            name = f"t{idx}"
        elif kind == PARAM:
            name = params[idx]
        else:
            raise CodegenError(f"cannot emit dim ({kind},{idx})")
        if c == 1:
            parts.append(name)
        elif c == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{c}*{name}")
    if int(le.const) or not parts:
        parts.append(str(int(le.const)))
    return " + ".join(parts).replace("+ -", "- ")


def bound_to_py(bound, params: Sequence[str], is_lower: bool) -> str:
    a, e = bound
    es = lin_to_py(e, params)
    if a == 1:
        return f"({es})"
    if is_lower:
        return f"_cdiv({es}, {a})"
    return f"(({es}) // {a})"


def bounds_group_py(groups, params, is_lower: bool) -> str:
    combine_in = "max" if is_lower else "min"
    combine_out = "min" if is_lower else "max"
    group_strs = []
    for g in groups:
        exprs = [bound_to_py(b, params, is_lower) for b in g]
        group_strs.append(exprs[0] if len(exprs) == 1
                          else f"{combine_in}({', '.join(exprs)})")
    if len(group_strs) == 1:
        return group_strs[0]
    return f"{combine_out}({', '.join(group_strs)})"


def constraint_to_py(c: Constraint, params: Sequence[str]) -> str:
    es = lin_to_py(c.expr, params)
    op = "==" if c.kind == EQ else ">="
    return f"({es}) {op} 0"


class Emitter:
    """Emits one function body; reused by the CPU/GPU/distributed
    backends with different prologues."""

    def __init__(self, fn, params: Sequence[str], profile: bool = False):
        self.fn = fn
        self.params = list(params)
        self.buf = io.StringIO()
        self.indent = 0
        self._tmp = 0
        self.current_comp = None  # statement being emitted (cache lookup)
        self._depth = 0           # loop-nest depth of the current node
        self._par_count = 0
        self.parallel_bodies: List[str] = []  # chunked worker functions
        self.taskgraph_bodies: List[str] = []  # tile body + grid functions
        self.taskgraph_dims: Optional[int] = None
        self._fn_offload_ok: Optional[bool] = None
        # profile=True wraps loop nests with counters/spans reporting
        # into an ``_obs`` collector; off, emission is byte-identical
        # to a profiling-unaware emitter.
        self.profile = bool(profile)
        self._counters: Dict[str, Tuple[str, int]] = {}
        if self.profile:
            for idx, (name, nbytes) in enumerate(
                    profile_counted_comps(fn)):
                self._counters[name] = (f"_ct{idx}", nbytes)

    # -- low-level writing --------------------------------------------------

    def line(self, text: str = "") -> None:
        self.buf.write("    " * self.indent + text + "\n")

    def fresh(self, prefix: str = "_v") -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def emit_prologue(self) -> None:
        """Unpack parameters and buffers from the call dictionaries.

        Shared by the ``_kernel`` entry point and by every chunked
        parallel body function, so a body re-executed in a worker
        process rebuilds exactly the names the nest references."""
        from repro.backends.common import collect_buffers
        for p in self.params:
            self.line(f"{p} = _params[{p!r}]")
        for buffer in collect_buffers(self.fn):
            self.line(f"{_buf_var(buffer)} = _bufs[{buffer.name!r}]")
        if self.profile:
            for var, __ in self._counters.values():
                self.line(f"{var} = 0")

    def emit_profile_flush(self) -> None:
        """Report the accumulated iteration counters into ``_obs``;
        emitted at the end of ``_kernel`` and of every chunked parallel
        body (profile mode only)."""
        for name, (var, nbytes) in self._counters.items():
            self.line(f"if {var}: _obs.count({name!r}, {var}, "
                      f"{var} * {nbytes})")

    # -- expression lowering -------------------------------------------------

    def expr_py(self, expr: Expr, env: Dict[str, str],
                float_div: bool) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, IterVar):
            if expr.name not in env:
                raise CodegenError(f"unbound iterator {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, ParamRef):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.params:
                return expr.name
            raise CodegenError(f"unknown parameter {expr.name!r}")
        if isinstance(expr, BinOp):
            lhs = self.expr_py(expr.lhs, env, float_div)
            rhs = self.expr_py(expr.rhs, env, float_div)
            op = expr.op
            if op == "/":
                op = "/" if float_div else "//"
            if op in ("and", "or"):
                return f"(({lhs}) {'&' if op == 'and' else '|'} ({rhs}))" \
                    if _maybe_vector(env) else f"(({lhs}) {op} ({rhs}))"
            return f"(({lhs}) {op} ({rhs}))"
        if isinstance(expr, UnOp):
            return f"({expr.op}({self.expr_py(expr.operand, env, float_div)}))"
        if isinstance(expr, Select):
            c = self.expr_py(expr.cond, env, float_div)
            t = self.expr_py(expr.if_true, env, float_div)
            f = self.expr_py(expr.if_false, env, float_div)
            return f"np.where({c}, {t}, {f})"
        if isinstance(expr, Cast):
            v = self.expr_py(expr.operand, env, float_div)
            return f"np.{expr.dtype.np_dtype}({v})"
        if isinstance(expr, Call):
            args = [self.expr_py(a, env, float_div) for a in expr.args]
            return self._call_py(expr.fn, args)
        if isinstance(expr, BufferRead):
            idx = [self.expr_py(e, env, float_div) for e in expr.indices]
            return f"{_buf_var(expr.buffer)}[{', '.join(idx)}]"
        if isinstance(expr, Access):
            return self._access_py(expr, env, float_div)
        raise CodegenError(f"cannot emit expression {expr!r}")

    def _call_py(self, fn: str, args: List[str]) -> str:
        table = {
            "min": "np.minimum", "max": "np.maximum", "abs": "np.abs",
            "sqrt": "np.sqrt", "exp": "np.exp", "log": "np.log",
            "floor": "np.floor", "pow": "np.power",
        }
        if fn == "clamp":
            v, lo, hi = args
            return f"np.clip({v}, {lo}, {hi})"
        if fn in table:
            return f"{table[fn]}({', '.join(args)})"
        raise CodegenError(f"unknown intrinsic {fn!r}")

    def _access_py(self, access: Access, env: Dict[str, str],
                   float_div: bool) -> str:
        producer = access.computation
        idx_strs = [self.expr_py(e, env, float_div) for e in access.indices]
        env_q = dict(_only_markers(env))
        env_q.update({nm: s for nm, s in zip(producer.var_names, idx_strs)})
        if producer.inlined:
            return "(" + self.expr_py(producer.expr, env_q,
                                      producer.dtype.is_float) + ")"
        store = producer.store_indices()
        out = [self.expr_py(e, env_q, False) for e in store]
        cached = None
        if self.current_comp is not None:
            cached = self.current_comp.cached_reads.get(producer.name)
        if cached is not None:
            shared, origins, __ = cached
            rebased = [f"({o}) - ({lin_to_py(org, self.params)})"
                       for o, org in zip(out, origins)]
            return f"{_buf_var(shared)}[{', '.join(rebased)}]"
        return f"{_buf_var(producer.get_buffer())}[{', '.join(out)}]"

    # -- statement env -------------------------------------------------------

    def stmt_env(self, comp) -> Dict[str, str]:
        env: Dict[str, str] = {}
        for nm, le in comp.rev.items():
            env[nm] = f"({lin_to_py(le, self.params)})"
        return env

    # -- AST walking -----------------------------------------------------------

    def emit_block(self, block: Block) -> None:
        if not block.children:
            self.line("pass")
            return
        for child in block.children:
            self.emit_node(child)

    def emit_node(self, node: Node) -> None:
        if isinstance(node, Loop):
            self.emit_loop(node)
        elif isinstance(node, Stmt):
            self.emit_stmt(node)
        elif isinstance(node, Block):
            self.emit_block(node)
        else:
            raise CodegenError(f"unknown AST node {node!r}")

    def emit_loop(self, loop: Loop) -> None:
        lo = bounds_group_py(loop.lowers, self.params, True)
        hi = bounds_group_py(loop.uppers, self.params, False)
        if self.profile and self._depth == 0:
            # Profile mode: wall-clock span around every top-level nest
            # (inner loops stay uninstrumented — counters there are per
            # statement, so the hot path adds one integer add).
            sp = self.fresh("_sp")
            self.line(f"{sp} = _now_ns()")
            cat = self._emit_loop_inner(loop, lo, hi)
            self.line(f"_obs.span({loop.var!r}, {loop.comps!r}, {sp}, "
                      f"_now_ns(), {cat!r})")
        else:
            self._emit_loop_inner(loop, lo, hi)

    def _emit_loop_inner(self, loop: Loop, lo: str, hi: str) -> str:
        """Emit one loop (vector / parallel-dispatch / sequential form);
        returns the span category for profile mode."""
        var = f"t{loop.level}"
        if loop.tag is not None and loop.tag.kind == "vector":
            if self._try_emit_vector(loop, lo, hi):
                return "loop-nest"
        if loop.tag is not None and loop.tag.kind == "parallel" \
                and self._depth == 0 and self._offload_safe(loop):
            self._emit_parallel_dispatch(loop, lo, hi)
            return "parallel"
        comment = ""
        if loop.tag is not None:
            comment = f"  # {loop.tag.kind} loop ({loop.var})"
        self.line(f"for {var} in range({lo}, ({hi}) + 1):{comment}")
        self.indent += 1
        self._depth += 1
        self.emit_block(loop.body)
        self._depth -= 1
        self.indent -= 1
        return "loop-nest"

    # -- parallel offload ---------------------------------------------------

    def _offload_safe(self, loop: Loop) -> bool:
        """Can this loop's body run in another process, given only
        ``_bufs``/``_params``?  Runtime operations (allocations rebind
        buffer names in the entry frame, sends/copies/barriers need the
        live runtime) and staged cache buffers (filled by an operation
        in the enclosing frame) pin the nest to ``_kernel``."""
        if self._fn_offload_ok is None:
            from repro.core.computation import Operation
            self._fn_offload_ok = not any(
                isinstance(c, Operation) for c in self.fn.computations)
        if not self._fn_offload_ok:
            return False
        todo: List[Node] = [loop]
        while todo:
            node = todo.pop()
            if isinstance(node, Stmt):
                comp = node.comp
                if comp.cached_reads or comp.cached_store is not None:
                    return False
            elif isinstance(node, Loop):
                todo.extend(node.body.children)
            elif isinstance(node, Block):
                todo.extend(node.children)
        return True

    def _emit_parallel_dispatch(self, loop: Loop, lo: str, hi: str) -> None:
        self._par_count += 1
        name = f"_par_body_{self._par_count}"
        self.parallel_bodies.append(self._render_parallel_body(name, loop))
        lo_v = self.fresh("_plo")
        hi_v = self.fresh("_phi")
        self.line(f"{lo_v} = {lo}")
        self.line(f"{hi_v} = {hi}")
        obs_arg = ", _obs" if self.profile else ""
        self.line(f"if getattr(_runtime, 'offload', None) is not None "
                  f"and _runtime.offload({hi_v} - {lo_v} + 1):")
        self.indent += 1
        self.line(f"_runtime.run({name}, _params, {lo_v}, {hi_v}{obs_arg})"
                  f"  # parallel loop ({loop.var})")
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        self.line(f"{name}(_bufs, _params, {lo_v}, {hi_v}{obs_arg})")
        self.indent -= 1

    def _render_parallel_body(self, name: str, loop: Loop) -> str:
        """Emit the loop as a standalone chunk worker over [_lo, _hi]."""
        saved_buf, saved_indent = self.buf, self.indent
        self.buf, self.indent = io.StringIO(), 0
        var = f"t{loop.level}"
        obs_param = ", _obs=None" if self.profile else ""
        self.line(f"def {name}(_bufs, _params, _lo, _hi{obs_param}):")
        self.indent += 1
        self.emit_prologue()
        self.line(f"for {var} in range(_lo, _hi + 1):"
                  f"  # parallel chunk ({loop.var})")
        self.indent += 1
        self._depth += 1
        self.emit_block(loop.body)
        self._depth -= 1
        self.indent -= 1
        if self.profile:
            self.emit_profile_flush()
        self.indent -= 1
        src = self.buf.getvalue()
        self.buf, self.indent = saved_buf, saved_indent
        return src

    # -- task-graph tiling ---------------------------------------------------

    def try_taskgraph(self, ast: Block) -> Optional[int]:
        """Render the tile-execution support functions for the
        task-graph runtime (``execution="taskgraph"``), when the nest
        is eligible.

        Eligibility: the function is a single top-level loop nest whose
        body can run in a worker process (the same test as parallel
        offload), with parameter-only bounds on the clamped level(s)
        and an *identity schedule* there — so a dependence distance in
        iteration space is also a distance in emitted loop space and
        the tile DAG built from it is sound.  Two levels are clamped
        when the nest is a perfect 2-deep prefix with rectangular
        (parameter-only) inner bounds; otherwise one.  Returns the
        number of clamped dimensions and records ``_tile_body`` /
        ``_tile_grid`` in :attr:`taskgraph_bodies`, or returns None —
        the source is then emitted without task-graph support and the
        option degrades to the normal sequential/fork-join path.
        """
        if len(ast.children) != 1 or not isinstance(ast.children[0], Loop):
            return None
        top = ast.children[0]
        if not self._offload_safe(top) or not self._bounds_param_only(top):
            return None
        levels = [top]
        inner = top.body.children
        if (len(inner) == 1 and isinstance(inner[0], Loop)
                and self._bounds_param_only(inner[0])):
            levels.append(inner[0])
        if not self._identity_scheduled(top, len(levels)):
            if len(levels) == 1 or not self._identity_scheduled(top, 1):
                return None
            levels = levels[:1]  # only the outer level is identity
        self.taskgraph_bodies.append(self._render_tile_grid(levels))
        self.taskgraph_bodies.append(self._render_tile_body(levels))
        self.taskgraph_dims = len(levels)
        return self.taskgraph_dims

    @staticmethod
    def _bounds_param_only(loop: Loop) -> bool:
        """True when no bound of ``loop`` references an enclosing loop
        dim (or an existentially quantified div) — the global extent is
        then a pure parameter expression the tile grid can evaluate."""
        for groups in (loop.lowers, loop.uppers):
            for g in groups:
                for __, e in g:
                    if any(kind != PARAM for kind, __i in e.dims()):
                        return False
        return True

    def _identity_scheduled(self, top: Loop, dims: int) -> bool:
        """Every statement under ``top`` iterates at least ``dims``
        loops and its schedule maps original iterator k to time dim k
        unchanged for k < dims (no skew/shift/reorder on the clamped
        levels)."""
        todo: List[Node] = [top]
        found = False
        while todo:
            node = todo.pop()
            if isinstance(node, Stmt):
                found = True
                comp = node.comp
                if len(comp.var_names) < dims or node.depth < dims:
                    return False
                for k in range(dims):
                    le = comp.rev.get(comp.var_names[k])
                    if le is None:
                        return False
                    try:
                        if lin_to_py(le, self.params) != f"t{k}":
                            return False
                    except CodegenError:
                        return False
            elif isinstance(node, Loop):
                todo.extend(node.body.children)
            elif isinstance(node, Block):
                todo.extend(node.children)
        return found

    def _render_tile_grid(self, levels: List[Loop]) -> str:
        """``_tile_grid(_params)``: the inclusive global [lo, hi] of
        each clamped level, evaluated from parameters alone — the
        iteration box the runtime partitions into tiles."""
        saved_buf, saved_indent = self.buf, self.indent
        self.buf, self.indent = io.StringIO(), 0
        self.line("def _tile_grid(_params):")
        self.indent += 1
        for p in self.params:
            self.line(f"{p} = _params[{p!r}]")
        pairs = []
        for loop in levels:
            lo = bounds_group_py(loop.lowers, self.params, True)
            hi = bounds_group_py(loop.uppers, self.params, False)
            pairs.append(f"({lo}, ({hi}))")
        self.line(f"return [{', '.join(pairs)}]")
        self.indent -= 1
        src = self.buf.getvalue()
        self.buf, self.indent = saved_buf, saved_indent
        return src

    def _render_tile_body(self, levels: List[Loop]) -> str:
        """``_tile_body(_bufs, _params, _lo0, _hi0[, _lo1, _hi1])``:
        the nest with the clamped levels intersected with the tile box
        (``max``/``min`` against the original bounds), everything
        deeper emitted unchanged.  Runs in a worker process against the
        shared staging buffers, exactly like a ``_par_body_k`` chunk."""
        saved_buf, saved_indent = self.buf, self.indent
        saved_depth = self._depth
        self.buf, self.indent, self._depth = io.StringIO(), 0, 0
        args = ", ".join(f"_lo{k}, _hi{k}" for k in range(len(levels)))
        self.line(f"def _tile_body(_bufs, _params, {args}):")
        self.indent += 1
        self.emit_prologue()
        for k, loop in enumerate(levels):
            lo = bounds_group_py(loop.lowers, self.params, True)
            hi = bounds_group_py(loop.uppers, self.params, False)
            self.line(f"for t{loop.level} in range(max({lo}, _lo{k}), "
                      f"min(({hi}), _hi{k}) + 1):"
                      f"  # tile dim ({loop.var})")
            self.indent += 1
            self._depth += 1
        self.emit_block(levels[-1].body)
        src = self.buf.getvalue()
        self.buf, self.indent = saved_buf, saved_indent
        self._depth = saved_depth
        return src

    # -- vectorization ----------------------------------------------------------

    def _try_emit_vector(self, loop: Loop, lo: str, hi: str) -> bool:
        stmts = loop.body.children
        if len(stmts) != 1 or not isinstance(stmts[0], Stmt):
            return False
        stmt = stmts[0]
        comp = stmt.comp
        self.current_comp = comp
        if stmt.guards or comp.predicate is not None:
            return False
        var = f"t{loop.level}"
        env = self.stmt_env(comp)
        env["__vector_var__"] = var
        try:
            store_strs = [
                self.expr_py(e, env, False)
                for e in comp.store_indices()]
            # Rewrite with the original var names bound to rev exprs.
            from repro.ir.fold import fold
            subst_env = {nm: env[nm] for nm in comp.var_names}
            subst_env["__vector_var__"] = var
            rhs = self.expr_py(fold(comp.expr), subst_env,
                               comp.dtype.is_float)
        except CodegenError:
            return False
        # Safety: vector var must drive the store, and reads of the
        # stored buffer must use exactly the store indices.
        store_idx = [self.expr_py(e, subst_env, False)
                     for e in comp.store_indices()]
        if not any(var in s for s in store_idx):
            return False
        if not self._reads_safe(comp, subst_env, store_idx):
            return False
        self.line(f"{var} = np.arange({lo}, ({hi}) + 1)  # vectorized "
                  f"({loop.var})")
        target = self._store_target(comp, subst_env)
        self.line(f"{target} = {rhs}")
        if self.profile and comp.name in self._counters:
            # One statement instance per vector lane.
            self.line(f"{self._counters[comp.name][0]} += {var}.size")
        return True

    def _reads_safe(self, comp, env: Dict[str, str],
                    store_idx: List[str]) -> bool:
        from repro.ir.expr import accesses_in
        target_buf = comp.get_buffer()
        for acc in accesses_in(comp.expr):
            producer = acc.computation
            if producer.inlined:
                continue
            if producer.get_buffer() is not target_buf:
                continue
            idx_strs = [self.expr_py(e, env, False) for e in acc.indices]
            env_q = dict(_only_markers(env))
            env_q.update({nm: s for nm, s in
                          zip(producer.var_names, idx_strs)})
            read_idx = [self.expr_py(e, env_q, False)
                        for e in producer.store_indices()]
            if read_idx != store_idx:
                return False
        return True

    # -- statements ---------------------------------------------------------------

    def emit_stmt(self, stmt: Stmt) -> None:
        comp = stmt.comp
        from repro.core.computation import Operation
        self.current_comp = comp
        closes = 0
        for guard in stmt.guards:
            self.line(f"if {constraint_to_py(guard, self.params)}:")
            self.indent += 1
            closes += 1
        env = self.stmt_env(comp)
        if comp.predicate is not None:
            pred = self.expr_py(comp.predicate, env, comp.dtype.is_float)
            self.line(f"if {pred}:")
            self.indent += 1
            closes += 1
        if isinstance(comp, Operation):
            self.emit_operation(comp, env)
        else:
            from repro.ir.fold import fold
            rhs = self.expr_py(fold(comp.expr), env, comp.dtype.is_float)
            target = self._store_target(comp, env)
            self.line(f"{target} = {rhs}")
            if self.profile and comp.name in self._counters:
                self.line(f"{self._counters[comp.name][0]} += 1")
        self.indent -= closes

    def _store_target(self, comp, env: Dict[str, str]) -> str:
        store_idx = [self.expr_py(e, env, False)
                     for e in comp.store_indices()]
        if comp.cached_store is not None:
            shared, origins = comp.cached_store
            rebased = [f"({s}) - ({lin_to_py(org, self.params)})"
                       for s, org in zip(store_idx, origins)]
            return f"{_buf_var(shared)}[{', '.join(rebased)}]"
        return f"{_buf_var(comp.get_buffer())}[{', '.join(store_idx)}]"

    def emit_operation(self, op, env: Dict[str, str]) -> None:
        """Backends override; the CPU backend handles alloc/copy ops."""
        kind = op.op_kind
        if kind == "allocate":
            buf = op.payload["buffer"]
            shape = ", ".join(self.expr_py(s, env, False)
                              for s in buf.sizes)
            self.line(f"{_buf_var(buf)} = np.zeros(({shape},), "
                      f"dtype=np.{buf.dtype.np_dtype})")
        elif kind == "copy":
            src = op.payload["src"]
            dst = op.payload["dst"]
            self.line(f"{_buf_var(dst)}[...] = {_buf_var(src)}")
        elif kind == "cache_copy":
            self._emit_cache_copy(op)
        elif kind == "barrier":
            self.line("pass  # barrier")
        else:
            self.line(f"_runtime.op({op.op_kind!r}, {op.name!r}, "
                      f"{{{_payload_env(env)}}})")

    def _emit_cache_copy(self, op) -> None:
        """Copy the (clipped) footprint box from global memory into the
        shared/local staging buffer."""
        src = op.payload["src"]
        dst = op.payload["dst"]
        origins = op.payload["origins"]
        extents = op.payload["extents"]
        src_slices = []
        dst_slices = []
        for k, (origin, extent) in enumerate(zip(origins, extents)):
            o = self.fresh("_o")
            size = self.expr_py(src.sizes[k], {}, False)
            self.line(f"{o} = {lin_to_py(origin, self.params)}")
            lo = self.fresh("_lo")
            hi = self.fresh("_hi")
            self.line(f"{lo} = max(0, {o})")
            self.line(f"{hi} = min({size}, {o} + {extent})")
            src_slices.append(f"{lo}:{hi}")
            dst_slices.append(f"{lo} - {o}:{hi} - {o}")
        self.line(f"{_buf_var(dst)}[{', '.join(dst_slices)}] = "
                  f"{_buf_var(src)}[{', '.join(src_slices)}]")


def _payload_env(env: Dict[str, str]) -> str:
    return ", ".join(f"{nm!r}: {s}" for nm, s in env.items()
                     if not nm.startswith("__"))


def _only_markers(env: Dict[str, str]) -> Dict[str, str]:
    return {k: v for k, v in env.items() if k.startswith("__")}


def _maybe_vector(env: Dict[str, str]) -> bool:
    return "__vector_var__" in env


def _buf_var(buffer) -> str:
    return f"b_{buffer.name}"
