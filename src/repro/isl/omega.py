"""Exact integer feasibility of affine constraint conjunctions.

This is the Omega test of Pugh (1991) with one substitution: instead of
the "mod-hat" trick for non-unit equality coefficients, equalities are
eliminated exactly via a Hermite-normal-form lattice solve
(:mod:`repro.isl.intlinalg`), after which a pure inequality system is
decided with real-shadow / dark-shadow elimination plus splinter
enumeration.  The result is an *exact* integer emptiness test for the
conjunctions that arise in polyhedral compilation (all dimensions,
including parameters and existential divs, are treated as free integer
variables, matching ISL's unconstrained-parameter semantics).
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .constraint import EQ, Constraint
from .intlinalg import solve_integer_system
from .linexpr import Dim

# A row is (coeffs, const): sum coeffs[v]*x_v + const, over var indices.
Row = Tuple[Dict[int, int], int]

_MAX_INEQS = 4000  # blowup guard; beyond this we fall back conservatively


class OmegaBudgetExceeded(Exception):
    """Raised when the inequality system grows past the safety budget."""


def conjunction_is_empty(bmap) -> bool:
    """True iff the basic map has no integer points (exact)."""
    var_ids: Dict[Dim, int] = {}

    def vid(dim: Dim) -> int:
        if dim not in var_ids:
            var_ids[dim] = len(var_ids)
        return var_ids[dim]

    eqs: List[Row] = []
    ineqs: List[Row] = []
    for c in bmap.constraints:
        coeffs = {vid(d): int(v) for d, v in c.expr.coeffs.items()}
        row = (coeffs, int(c.expr.const))
        (eqs if c.kind == EQ else ineqs).append(row)
    try:
        return not _feasible(eqs, ineqs)
    except OmegaBudgetExceeded:
        # Conservative fallback: rational feasibility (never claims empty
        # when the integer set is nonempty only risks the safe direction:
        # a rationally-feasible report of "nonempty" may be wrong for
        # integers, which makes legality checks conservative, not unsound).
        from .fourier_motzkin import rational_feasible
        return not rational_feasible(bmap.constraints)


def _n_vars(rows: Sequence[Row]) -> int:
    top = -1
    for coeffs, _ in rows:
        for v in coeffs:
            if v > top:
                top = v
    return top + 1


def _feasible(eqs: List[Row], ineqs: List[Row]) -> bool:
    if eqs:
        reduced = _eliminate_equalities(eqs, ineqs,
                                        _n_vars(eqs) if not ineqs
                                        else max(_n_vars(eqs), _n_vars(ineqs)))
        if reduced is None:
            return False
        ineqs, _ = reduced
    return _ineq_feasible(ineqs)


def _eliminate_equalities(eqs: List[Row], ineqs: List[Row], n_vars: int
                          ) -> Optional[Tuple[List[Row], int]]:
    """Solve the equality lattice, substitute into the inequalities.

    Returns the inequality system over the lattice's free coordinates, or
    ``None`` when the equalities alone are integer-infeasible.
    """
    a = [[row[0].get(v, 0) for v in range(n_vars)] for row in eqs]
    b = [-row[1] for row in eqs]
    solved = solve_integer_system(a, b)
    if solved is None:
        return None
    x0, basis = solved
    n_free = len(basis)
    out: List[Row] = []
    for coeffs, const in ineqs:
        new_const = const + sum(c * x0[v] for v, c in coeffs.items())
        new_coeffs: Dict[int, int] = {}
        for k in range(n_free):
            val = sum(c * basis[k][v] for v, c in coeffs.items())
            if val:
                new_coeffs[k] = val
        out.append((new_coeffs, new_const))
    return out, n_free


def _normalize(row: Row) -> Optional[Row]:
    """Tighten an inequality row; ``None`` means trivially true."""
    coeffs, const = row
    coeffs = {v: c for v, c in coeffs.items() if c}
    if not coeffs:
        return ({}, const)
    g = 0
    for c in coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        coeffs = {v: c // g for v, c in coeffs.items()}
        const = const // g if const >= 0 else -((-const + g - 1) // g)
    return (coeffs, const)


def _ineq_feasible(ineqs: List[Row], depth: int = 0) -> bool:
    # Normalize, dedupe, keep tightest of parallel constraints.
    tight: Dict[Tuple, int] = {}
    for row in ineqs:
        norm = _normalize(row)
        coeffs, const = norm
        if not coeffs:
            if const < 0:
                return False
            continue
        key = tuple(sorted(coeffs.items()))
        if key not in tight or const < tight[key]:
            tight[key] = const
    system: List[Row] = [(dict(k), c) for k, c in tight.items()]
    # Opposite-parallel contradiction check: e >= 0 and -e + c >= 0
    # requires c >= 0 already handled through elimination; quick check:
    for key, const in tight.items():
        neg = tuple(sorted((v, -c) for v, c in key))
        if neg in tight and const + tight[neg] < 0:
            return False
    if not system:
        return True
    if len(system) > _MAX_INEQS:
        raise OmegaBudgetExceeded()

    variables = sorted({v for coeffs, _ in system for v in coeffs})

    # Remove variables bounded on only one side (exact elimination).
    changed = True
    while changed:
        changed = False
        for v in list(variables):
            signs = {(c > 0) for coeffs, _ in system for w, c in
                     coeffs.items() if w == v}
            if len(signs) == 1:
                system = [row for row in system if v not in row[0]]
                variables.remove(v)
                changed = True
    if not variables:
        return all(const >= 0 for coeffs, const in system if not coeffs)
    if not system:
        return True

    # Choose elimination variable: prefer an exact one (all unit
    # coefficients on one side); otherwise minimize combination count.
    def cost(v: int) -> Tuple[int, int]:
        lo = sum(1 for coeffs, _ in system if coeffs.get(v, 0) > 0)
        up = sum(1 for coeffs, _ in system if coeffs.get(v, 0) < 0)
        unit_lo = all(coeffs.get(v, 0) in (0, 1) for coeffs, _ in system
                      if coeffs.get(v, 0) > 0)
        unit_up = all(coeffs.get(v, 0) in (0, -1) for coeffs, _ in system
                      if coeffs.get(v, 0) < 0)
        exact = 0 if (unit_lo or unit_up) else 1
        return (exact, lo * up)

    var = min(variables, key=cost)
    lowers: List[Tuple[int, Row]] = []  # a*var >= -rest : (a, rest_row)
    uppers: List[Tuple[int, Row]] = []  # b*var <= rest  : (b, rest_row)
    rest_rows: List[Row] = []
    for coeffs, const in system:
        c = coeffs.get(var, 0)
        rest = ({v: k for v, k in coeffs.items() if v != var}, const)
        if c == 0:
            rest_rows.append((coeffs, const))
        elif c > 0:
            lowers.append((c, rest))
        else:
            uppers.append((-c, rest))

    exact = (all(a == 1 for a, _ in lowers)
             or all(b == 1 for b, _ in uppers))

    def combine(scale_shift: int) -> List[Row]:
        rows = list(rest_rows)
        for a, (lc, lk) in lowers:
            for b, (uc, uk) in uppers:
                # a*var + l >= 0 and -b*var + u >= 0
                # => b*l + a*u >= 0 (real); >= (a-1)(b-1) for dark shadow.
                coeffs: Dict[int, int] = {}
                for v, c in lc.items():
                    coeffs[v] = coeffs.get(v, 0) + b * c
                for v, c in uc.items():
                    coeffs[v] = coeffs.get(v, 0) + a * c
                const = b * lk + a * uk - (scale_shift * (a - 1) * (b - 1))
                rows.append((coeffs, const))
        return rows

    if exact:
        return _ineq_feasible(combine(0), depth + 1)

    if not _ineq_feasible(combine(0), depth + 1):
        return False  # real shadow empty => no rational point at all
    if _ineq_feasible(combine(1), depth + 1):
        return True   # dark shadow nonempty => integer point exists
    # Splinter: any integer solution outside the dark shadow satisfies
    # a*var = -l + k with 0 <= k <= (a*b_max - a - b_max)/b_max for some
    # lower bound (a, l).
    b_max = max(b for b, _ in uppers)
    for a, (lc, lk) in lowers:
        top = (a * b_max - a - b_max) // b_max
        for k in range(top + 1):
            # Equality: a*var + l - k = 0 where l = lc + lk.
            eq_coeffs = dict(lc)
            eq_coeffs[var] = eq_coeffs.get(var, 0) + a
            eq_row: Row = (eq_coeffs, lk - k)
            if _feasible([eq_row], system):
                return True
    return False
