"""Distributed backend tests: rank-conditional codegen, send/receive
semantics, halo exchange, and communication statistics."""

import time

import numpy as np
import pytest

from repro import (ASYNC, SYNC, Buffer, Computation, Function, Input,
                   Param, Var, receive, send)
from repro.core.errors import ExecutionError


def build_halo_stencil():
    """Each node owns R rows; out[i] = lin[i] + lin[i+1] with the halo
    row received from the next node (paper Figure 3(c) pattern)."""
    R, Nodes = Param("R"), Param("Nodes")
    f = Function("dstencil", params=[R, Nodes])
    with f:
        lin = Input("lin", [Var("x", 0, R + 1)])
        s_it = Var("s", 1, Nodes)
        r_it = Var("r", 0, Nodes - 1)
        s_op = send([s_it], lin.get_buffer(), 0, 1, s_it - 1, (ASYNC,))
        r_op = receive([r_it], lin.get_buffer(), R, 1, r_it + 1, (SYNC,),
                       matching_send=s_op)
        i = Var("i", 0, R)
        out = Computation("out", [i], None)
        out.set_expression(lin(i) + lin(i + 1))
    s_op.distribute("s")
    r_op.distribute("r")
    r_op.after(s_op)
    out.after(r_op)
    return f


class TestHaloExchange:
    def run(self, ranks=4, rows=5):
        f = build_halo_stencil()
        k = f.compile("distributed")
        full = np.arange(ranks * rows, dtype=np.float64)
        inputs = {"lin": [
            np.concatenate([full[q * rows:(q + 1) * rows], [0.0]])
            for q in range(ranks)]}
        res = k(ranks=ranks, inputs=inputs,
                params={"R": rows, "Nodes": ranks})
        return k, full, res

    def test_results_match(self):
        k, full, res = self.run()
        got = np.concatenate([r["out"] for r in res])
        ref = full + np.concatenate([full[1:], [0.0]])
        # all but the global last row (no halo beyond the last node)
        assert np.allclose(got[:-1], ref[:-1])

    def test_exact_message_volume(self):
        """The paper's key distributed claim: explicit send/receive moves
        exactly the needed data — here 1 element per adjacent pair."""
        k, __, ___ = self.run(ranks=4)
        stats = k.last_stats
        assert stats.message_count() == 3
        assert stats.total_elements() == 3
        assert sorted(stats.messages) == [(1, 0, 1), (2, 1, 1), (3, 2, 1)]

    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_scales_with_ranks(self, ranks):
        k, full, res = self.run(ranks=ranks, rows=3)
        got = np.concatenate([r["out"] for r in res])
        ref = full + np.concatenate([full[1:], [0.0]])
        assert np.allclose(got[:-1], ref[:-1])


class TestRankConditional:
    def test_generated_code_shape(self):
        """Section V-A: 'each distributed loop is converted into a
        conditional based on the MPI rank'."""
        f = build_halo_stencil()
        src = f.compile("distributed").source
        assert "_runtime.rank" in src
        assert "_runtime.send(" in src
        assert "_runtime.recv(" in src

    def test_distributed_compute_loop(self):
        """distribute() on a computation loop partitions iterations."""
        P, Nodes = Param("P"), Param("Nodes")
        f = Function("f", params=[P, Nodes])
        with f:
            q = Var("q", 0, Nodes)
            i = Var("i", 0, P)
            c = Computation("c", [q, i], None)
            c.set_expression(1.0 * q)
        c.distribute("q")
        k = f.compile("distributed")
        res = k(ranks=3, inputs={}, params={"P": 4, "Nodes": 3})
        for rank in range(3):
            row = res[rank]["c"][rank]
            assert (row == rank).all()
            # other ranks' rows untouched on this node
            other = res[rank]["c"][(rank + 1) % 3]
            assert (other == 0).all()


class TestRuntimeErrors:
    def test_send_to_invalid_rank(self):
        Nodes = Param("Nodes")
        f = Function("f", params=[Nodes])
        with f:
            buf = Buffer("b", [4])
            s_it = Var("s", 0, Nodes)
            s_op = send([s_it], buf, 0, 1, s_it + 99)
            c = Computation("c", [Var("i", 0, 4)], 0.0)
            c.store_in(buf, [Var("i", 0, 4)])
        s_op.distribute("s")
        c.after(s_op)
        k = f.compile("distributed")
        with pytest.raises(ExecutionError):
            k(ranks=2, inputs={}, params={"Nodes": 2})

    def test_unmatched_receive_times_out(self):
        Nodes = Param("Nodes")
        f = Function("f", params=[Nodes])
        with f:
            buf = Buffer("b", [4])
            r_it = Var("r", 0, Nodes)
            r_op = receive([r_it], buf, 0, 1, r_it)  # receive from self
            c = Computation("c", [Var("i", 0, 4)], 0.0)
            c.store_in(buf, [Var("i", 0, 4)])
        r_op.distribute("r")
        c.after(r_op)
        k = f.compile("distributed")
        import repro.backends.distributed as D
        orig = D.MPIRuntime.recv
        D.MPIRuntime.recv = lambda self, src, timeout=0.2: orig(
            self, src, timeout)
        try:
            with pytest.raises(ExecutionError):
                k(ranks=1, inputs={}, params={"Nodes": 1})
        finally:
            D.MPIRuntime.recv = orig


class TestAsyncSend:
    """MPI_Isend-style sends: the completion handle, the sync
    (rendezvous) variant, and the per-message kind record the network
    model's overlap input comes from."""

    def make_pair(self, timeout=5.0):
        from repro.backends.distributed import MPIRuntime, World
        world = World(2)
        return (world, MPIRuntime(0, world, timeout=timeout),
                MPIRuntime(1, world, timeout=timeout))

    def test_async_send_returns_pending_handle(self):
        world, r0, r1 = self.make_pair()
        req = r0.send(1, np.arange(4.0))
        assert not req.done()          # posted, not yet consumed
        out = r1.recv(0)
        assert np.array_equal(out, np.arange(4.0))
        assert req.done()              # the receive completed it
        assert req.wait(timeout=0.1)

    def test_isend_is_the_async_alias(self):
        world, r0, r1 = self.make_pair()
        req = r0.isend(1, np.ones(3))
        r1.recv(0)
        assert req.done()
        assert world.stats.kinds == ["async"]

    def test_sync_send_blocks_until_received(self):
        import threading
        world, r0, r1 = self.make_pair()
        order = []

        def receiver():
            time.sleep(0.15)
            order.append("recv")
            r1.recv(0)

        t = threading.Thread(target=receiver)
        t.start()
        req = r0.send(1, np.ones(2), sync=True)   # rendezvous
        order.append("send-returned")
        t.join()
        assert order == ["recv", "send-returned"]
        assert req.done()

    def test_unmatched_sync_send_times_out(self):
        world, r0, r1 = self.make_pair(timeout=0.3)
        with pytest.raises(ExecutionError) as err:
            r0.send(1, np.ones(2), sync=True)
        assert "not matched by a receive" in str(err.value)

    def test_sync_send_fails_fast_when_peer_dies(self):
        import threading
        from repro.core.errors import RankFailedError
        world, r0, r1 = self.make_pair(timeout=10.0)

        def killer():
            time.sleep(0.1)
            world.mark_failed(1, RuntimeError("boom"))

        t = threading.Thread(target=killer)
        t.start()
        start = time.monotonic()
        with pytest.raises(RankFailedError) as err:
            r0.send(1, np.ones(2), sync=True)
        t.join()
        assert time.monotonic() - start < 5.0   # nowhere near timeout
        assert err.value.rank == 1

    def test_stats_record_kinds_and_async_fraction(self):
        world, r0, r1 = self.make_pair()
        import threading
        t = threading.Thread(target=lambda: (time.sleep(0.05),
                                             r1.recv(0)))
        t.start()
        r0.send(1, np.ones(2), sync=True)
        t.join()
        r0.isend(1, np.ones(2))
        r0.send(1, np.ones(2))
        r1.recv(0); r1.recv(0)
        assert world.stats.kinds == ["sync", "async", "async"]
        assert world.stats.async_fraction() == pytest.approx(2 / 3)

    def test_empty_stats_async_fraction_is_zero(self):
        from repro.backends.distributed import CommStats
        assert CommStats().async_fraction() == 0.0
