"""Model-vs-measured calibration for the Fig. 5 CPU kernels.

The paper's evaluation figures are regenerated through the analytical
:class:`~repro.machine.cpu_model.CpuCostModel`; the observability layer
(``profile=True`` compiles, see docs/observability.md) measures what the
generated kernels actually do.  This module runs both on the same
scheduled function and builds a per-computation comparison table:

* **exactness** — measured statement-instance counts against the
  polyhedral domain cardinality (they must match exactly; a mismatch is
  a codegen bug, and the tier-1 suite asserts it never happens);
* **calibration** — the model's per-computation *share* of total time
  against the measured share, the number the autoscheduler's ranking
  actually depends on (absolute modeled times are not meaningful, see
  DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.isl.enumerate_ import count as domain_count
from repro.machine import CpuCostModel


@dataclass
class CalibrationRow:
    """One computation of one benchmark, model next to measurement."""

    benchmark: str
    computation: str
    measured_iterations: int
    domain_points: int
    measured_seconds: float
    modeled_seconds: float
    measured_share: float       # fraction of the kernel's measured time
    modeled_share: float        # fraction of the kernel's modeled time

    @property
    def iterations_exact(self) -> bool:
        return self.measured_iterations == self.domain_points

    @property
    def share_error(self) -> float:
        """Absolute difference of time shares (0 = perfectly
        calibrated attribution)."""
        return abs(self.measured_share - self.modeled_share)


def calibrate_kernel(builder: Callable, schedule: Optional[Callable] = None,
                     params: Optional[Dict[str, int]] = None,
                     seed: int = 0) -> List[CalibrationRow]:
    """Profile one kernel bundle and line it up against the cost model.

    Compiles with ``profile=True`` (single-threaded, so nest spans are
    clean wall time), runs on generated inputs, and joins the
    :class:`~repro.obs.RunReport` with the model's
    ``per_computation_seconds``.
    """
    bundle = builder()
    if schedule is not None:
        schedule(bundle)
    run_params = dict(params or bundle.test_params)
    rng = np.random.default_rng(seed)
    inputs = bundle.make_inputs(run_params, rng)

    kernel = bundle.function.compile("cpu", profile=True, num_threads=1)
    kernel(**{k: np.copy(v) for k, v in inputs.items()}, **run_params)
    run = kernel.last_run

    model = CpuCostModel(bundle.function, run_params,
                         packed_buffers=list(bundle.packed_buffers)
                         ).estimate()

    measured_total = sum(r.wall_ns for r in run.computations.values())
    modeled_total = sum(model.per_computation_seconds.values())
    rows: List[CalibrationRow] = []
    for name in sorted(run.computations):
        rec = run.computations[name]
        comp = bundle.function.find(name)
        modeled_s = model.per_computation_seconds.get(name, 0.0)
        rows.append(CalibrationRow(
            benchmark=bundle.name,
            computation=name,
            measured_iterations=rec.iterations,
            domain_points=domain_count(comp.domain, run_params),
            measured_seconds=rec.wall_ns / 1e9,
            modeled_seconds=modeled_s,
            measured_share=(rec.wall_ns / measured_total
                            if measured_total else 0.0),
            modeled_share=(modeled_s / modeled_total
                           if modeled_total else 0.0)))
    return rows


def _fig5_calibration_kernels():
    """(builder, schedule) pairs for the Fig. 5 CPU kernels that run at
    test scale: sgemm, conv, and the HPCG SpMV stencil."""
    from repro.kernels.dnn import build_conv, schedule_conv_cpu
    from repro.kernels.hpcg import build_spmv27, schedule_spmv_cpu
    from repro.kernels.linalg import build_sgemm, schedule_sgemm_cpu

    def sched_sgemm(bundle):
        # Test-scale tile sizes (the paper-tuned 64x64 tiles degenerate
        # on the 23x17 test problem).
        schedule_sgemm_cpu(bundle, 8, 4)

    return [(build_sgemm, sched_sgemm),
            (build_conv, schedule_conv_cpu),
            (build_spmv27, schedule_spmv_cpu)]


def calibration_table(params: Optional[Dict[str, int]] = None
                      ) -> List[CalibrationRow]:
    """The model-vs-measured table over the Fig. 5 kernels (test-scale
    parameters unless ``params`` overrides them)."""
    rows: List[CalibrationRow] = []
    for builder, schedule in _fig5_calibration_kernels():
        rows.extend(calibrate_kernel(builder, schedule, params=params))
    return rows


@dataclass
class CalibrationFit:
    """The measured-vs-modeled time-scale fit feeding the autoscheduler.

    ``scale`` converts raw model output into wall-clock seconds for
    *this* machine and runtime (the way csl-experiments fits its GEMM
    ``overhead_factor``); :class:`~repro.autosched.oracle.ModelOracle`
    takes it as its ``scale=``.  ``per_benchmark_error`` is the relative
    error of the scaled model against measurement per benchmark — the
    honesty number the tier-2 gate watches.
    """

    scale: float
    measured_totals: Dict[str, float]
    modeled_totals: Dict[str, float]
    per_benchmark_error: Dict[str, float]

    @property
    def max_error(self) -> float:
        return max(self.per_benchmark_error.values(), default=0.0)

    @property
    def mean_error(self) -> float:
        errs = list(self.per_benchmark_error.values())
        return sum(errs) / len(errs) if errs else 0.0


def fit_time_scale(rows: List[CalibrationRow]) -> CalibrationFit:
    """Least-squares (through the origin) fit of measured kernel seconds
    against modeled seconds over per-benchmark totals:
    ``scale = sum(meas*model) / sum(model^2)``, the closed-form
    minimizer of ``sum((scale*model - meas)^2)``."""
    if not rows:
        raise ValueError("fit_time_scale needs at least one row")
    measured: Dict[str, float] = {}
    modeled: Dict[str, float] = {}
    for r in rows:
        measured[r.benchmark] = (measured.get(r.benchmark, 0.0)
                                 + r.measured_seconds)
        modeled[r.benchmark] = (modeled.get(r.benchmark, 0.0)
                                + r.modeled_seconds)
    denom = sum(m * m for m in modeled.values())
    if denom <= 0:
        raise ValueError("fit_time_scale: model predicts zero time")
    scale = sum(measured[b] * modeled[b] for b in modeled) / denom
    errors = {
        b: (abs(scale * modeled[b] - measured[b]) / measured[b]
            if measured[b] > 0 else 0.0)
        for b in modeled}
    return CalibrationFit(scale=scale, measured_totals=measured,
                          modeled_totals=modeled,
                          per_benchmark_error=errors)


def fitted_model_oracle(params: Optional[Dict[str, int]] = None,
                        rows: Optional[List[CalibrationRow]] = None,
                        **oracle_kw):
    """A :class:`~repro.autosched.oracle.ModelOracle` whose ``scale`` is
    fitted from measured runs (``rows`` defaults to a fresh
    :func:`calibration_table` sweep — seconds of profiling).  ``params``
    are the parameter values the oracle will model during search."""
    from repro.autosched.oracle import ModelOracle
    fit = fit_time_scale(rows if rows is not None else calibration_table())
    return ModelOracle(params, scale=fit.scale, **oracle_kw)


def render_calibration(rows: List[CalibrationRow]) -> str:
    """The harness's printable model-vs-measured table."""
    lines = [f"{'benchmark':<10} {'computation':<14} {'iters':>9} "
             f"{'domain':>9} {'exact':>6} {'meas ms':>9} {'model ms':>9} "
             f"{'meas %':>7} {'model %':>8}"]
    for r in rows:
        lines.append(
            f"{r.benchmark:<10} {r.computation:<14} "
            f"{r.measured_iterations:>9} {r.domain_points:>9} "
            f"{'yes' if r.iterations_exact else 'NO':>6} "
            f"{r.measured_seconds * 1e3:>9.3f} "
            f"{r.modeled_seconds * 1e3:>9.3f} "
            f"{r.measured_share * 100:>6.1f}% "
            f"{r.modeled_share * 100:>7.1f}%")
    return "\n".join(lines)
