"""The task-graph runtime (docs/task_runtime.md): DAG lowering from
polyhedral dependences, the ready-queue scheduler on the worker pool,
and the driver's ``execution="taskgraph"`` option — including every
degenerate shape (empty grid, single tile, chain DAG), worker-crash
replay, and deadline expiry between dispatches, all of which must stay
bit-identical to the sequential nest."""

import numpy as np
import pytest

from repro import Buffer, Computation, Function, Input, Param, Var
from repro.core.buffer import ArgKind
from repro.core.errors import DeadlineExceededError
from repro.driver import kernel_registry
from repro.kernels.stencil import build_heat
from repro.runtime import (TaskGraphRuntime, TaskGraphUnavailable,
                           build_task_graph, choose_tile_sizes,
                           run_forkjoin, tile_deltas)

# A 2-worker pool schedules the same DAG the same way on a single-core
# host (just timeshared), so the functional tests run everywhere a pool
# can be created at all; only the perf gates in benchmarks/ need real
# cores.
from repro.backends.parallel import get_pool

needs_pool = pytest.mark.skipif(get_pool(2) is None,
                                reason="this host cannot create a "
                                "worker pool")

HEAT_DISTANCES = [(1, -1), (1, 0), (1, 1)]


@pytest.fixture(autouse=True)
def _fresh_registry():
    kernel_registry.clear()
    yield
    kernel_registry.clear()


def build_scan():
    """1-D recurrence s[i] = s[i-1] + 1: every tiling of it is a
    chain — the DAG can never beat sequential execution."""
    N = Param("N")
    f = Function("scan", params=[N])
    with f:
        sb = Buffer("s", [N], kind=ArgKind.INOUT)
        i = Var("i", 1, N)
        acc = Computation("acc", [i], None)
        acc.set_expression(acc(i - 1) + 1.0)
        acc.store_in(sb, [i])
    return f


def build_copy(rows=1):
    """Dependence-free 2-D copy with a tiny outer extent — lowers to a
    DAG with ``rows`` independent tiles."""
    N = Param("N")
    f = Function("copy2d", params=[N])
    with f:
        a = Input("a", [Var("x", 0, rows), Var("y", 0, N)])
        cb = Buffer("c", [rows, N], kind=ArgKind.OUTPUT)
        i, j = Var("i", 0, rows), Var("j", 0, N)
        c = Computation("c_out", [i, j], None)
        c.set_expression(a(i, j) * 2.0)
        c.store_in(cb, [i, j])
    return f


def heat_case(p, seed=0):
    b = build_heat()
    rng = np.random.default_rng(seed)
    inp = b.make_inputs(p, rng)
    ref = b.reference({k: v.copy() for k, v in inp.items()}, p)
    return b, inp, ref


class TestTileDeltas:
    def test_heat_wavefront_deltas(self):
        assert tile_deltas(HEAT_DISTANCES, (1, 4)) == \
            [(1, -1), (1, 0), (1, 1)]

    def test_zero_projection_is_dropped(self):
        # A distance swallowed whole by one tile yields no edge.
        assert tile_deltas([(0, 1)], (1, 8)) == [(0, 1)]
        assert tile_deltas([], (1, 8)) == []

    def test_coarse_time_tiles_are_rejected(self):
        # Tiling the wavefront dim folds (1, -1) into an intra-row
        # offset (0, -1): lex-negative, i.e. a cycle between tiles.
        with pytest.raises(TaskGraphUnavailable) as err:
            tile_deltas(HEAT_DISTANCES, (2, 4))
        assert err.value.reason == "lex-negative-delta"

    def test_one_dimensional_chain(self):
        assert tile_deltas([(1,)], (1,)) == [(1,)]
        assert tile_deltas([(3,)], (2,)) == [(1,), (2,)]


class TestChooseTileSizes:
    def test_wavefront_dim_stays_unit(self):
        s = choose_tile_sizes([100, 64], HEAT_DISTANCES, workers=4)
        assert s[0] == 1            # coarser would fold a cycle
        assert s[1] == 8            # ~2 x workers tiles per row

    def test_dependence_free_chunks_outer_dim(self):
        assert choose_tile_sizes([64, 100], [], workers=4) == (16, 100)

    def test_one_dim(self):
        assert choose_tile_sizes([64], [(1,)], workers=4) == (1,)
        assert choose_tile_sizes([64], [], workers=4) == (16,)


class TestBuildTaskGraph:
    def test_heat_is_a_wavefront(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        g = build_task_graph(b.function, {"T": 12, "N": 66},
                             [(1, 11), (1, 64)], workers=2)
        assert g.shape == (11, 4) and g.tile_sizes == (1, 16)
        assert set(g.deltas) == set(HEAT_DISTANCES)
        assert not g.is_chain() and g.max_width == 4 and g.depth == 11
        # Interior tile: three upstream neighbours.
        interior = next(t for t in g.tasks if t.coords == (5, 2))
        assert len(interior.preds) == 3
        # Lex order is topological: every edge points forward.
        for t in g.tasks:
            assert all(p < t.index for p in t.preds)
            assert all(s > t.index for s in t.succs)

    def test_bounds_cover_the_grid_exactly_once(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        g = build_task_graph(b.function, {"T": 9, "N": 47},
                             [(1, 8), (1, 45)], workers=3)
        seen = set()
        for t in g.tasks:
            (lo0, hi0), (lo1, hi1) = t.bounds
            for a in range(lo0, hi0 + 1):
                for c in range(lo1, hi1 + 1):
                    assert (a, c) not in seen
                    seen.add((a, c))
        assert len(seen) == 8 * 45

    def test_empty_grid(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        g = build_task_graph(b.function, {"T": 1, "N": 8},
                             [(1, 0), (1, 6)], workers=2)
        assert g.is_empty() and g.max_width == 0

    def test_chain_dag(self):
        f = build_scan()
        g = build_task_graph(f, {"N": 64}, [(1, 63)], workers=4)
        assert g.is_chain() and g.depth == len(g.tasks)

    def test_wavefront_levels_partition_the_tasks(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        g = build_task_graph(b.function, {"T": 7, "N": 34},
                             [(1, 6), (1, 32)], workers=2)
        levels = g.wavefront_levels()
        assert sorted(i for lv in levels for i in lv) == \
            list(range(len(g.tasks)))
        assert len(levels) == g.depth
        assert max(len(lv) for lv in levels) == g.max_width
        # Row t's tiles all sit at level t for the heat wavefront.
        for lv, members in enumerate(levels):
            assert {g.tasks[i].coords[0] for i in members} == {lv}


class TestDriverOption:
    def test_execution_option_is_validated(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        with pytest.raises(TypeError) as err:
            b.function.compile("cpu", execution="bogus")
        assert "forkjoin" in str(err.value)

    def test_execution_rides_the_cache_key(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        k_fj = b.function.compile("cpu", num_threads=2)
        k_tg = b.function.compile("cpu", execution="taskgraph",
                                  num_threads=2)
        assert k_fj is not k_tg
        assert "_TASKGRAPH_DIMS" not in k_fj.source
        assert "_TASKGRAPH_DIMS" in k_tg.source
        assert b.function.compile("cpu", execution="taskgraph",
                                  num_threads=2) is k_tg

    def test_profiled_build_degrades_to_forkjoin(self):
        b, __, __ = heat_case({"T": 1, "N": 1})
        k = b.function.compile("cpu", execution="taskgraph",
                               profile=True, num_threads=2)
        assert "_TASKGRAPH_DIMS" not in k.source

    def test_single_threaded_build_has_no_taskgraph_runtime(self):
        b, inp, ref = heat_case({"T": 6, "N": 20})
        k = b.function.compile("cpu", execution="taskgraph",
                               num_threads=1)
        assert not isinstance(k.runtime, TaskGraphRuntime)
        out = k(u=inp["u"].copy(), T=6, N=20)
        assert np.array_equal(out["u"], ref["u"])


@needs_pool
class TestTaskGraphExecution:
    def compile_heat(self, b, **opts):
        opts.setdefault("num_threads", 2)
        k = b.function.compile("cpu", execution="taskgraph", **opts)
        assert isinstance(k.runtime, TaskGraphRuntime)
        return k

    def test_bit_identical_to_reference(self):
        b, inp, ref = heat_case({"T": 12, "N": 80})
        k = self.compile_heat(b)
        out = k(u=inp["u"].copy(), T=12, N=80)
        assert np.array_equal(out["u"], ref["u"])
        st = k.runtime.taskgraph_stats
        assert st.graphs == 1 and st.tasks > 0 and st.fallbacks == 0
        assert st.last_width >= 2

    def test_empty_dag_is_a_noop(self):
        # T=1: the t loop runs zero iterations; the graph is empty and
        # the runtime answers "done" without touching the pool.
        b, inp, ref = heat_case({"T": 1, "N": 16})
        k = self.compile_heat(b)
        out = k(u=inp["u"].copy(), T=1, N=16)
        assert np.array_equal(out["u"], ref["u"])
        st = k.runtime.taskgraph_stats
        assert st.graphs == 0 and st.fallbacks == 0

    def test_single_tile_declines(self):
        f = build_copy(rows=1)
        k = f.compile("cpu", execution="taskgraph", num_threads=2)
        assert isinstance(k.runtime, TaskGraphRuntime)
        a = np.arange(24.0, dtype=np.float32).reshape(1, 24)
        out = k(a=a, N=24)
        assert np.array_equal(out["c"], a * 2.0)
        st = k.runtime.taskgraph_stats
        assert st.fallbacks == 1 and st.last_reason == "single-tile"

    def test_chain_dag_declines_bit_identically(self):
        f = build_scan()
        k = f.compile("cpu", execution="taskgraph", num_threads=2)
        assert isinstance(k.runtime, TaskGraphRuntime)
        s = np.zeros(64)
        s[0] = 5.0
        out = k(s=s.copy(), N=64)
        expected = 5.0 + np.arange(64.0)
        assert np.array_equal(out["s"], expected)
        st = k.runtime.taskgraph_stats
        assert st.fallbacks == 1 and st.last_reason == "chain-dag"

    def test_worker_crash_replays_bit_identically(self):
        from repro.faults import FaultPlan, injected
        b, inp, ref = heat_case({"T": 10, "N": 60}, seed=3)
        k = self.compile_heat(b)
        # Kill the worker running a mid-wavefront tile on the first
        # attempt only; the whole graph replays from the snapshot.
        with injected(FaultPlan().crash_worker(chunk=7,
                                               attempt=0)) as plan:
            out = k(u=inp["u"].copy(), T=10, N=60)
        assert plan.fired("worker-crash") == 1
        assert np.array_equal(out["u"], ref["u"])
        st = k.runtime.taskgraph_stats
        assert st.retries >= 1 and st.fallbacks == 0

    def test_pool_refusal_exhaustion_falls_back_sequentially(self):
        from repro.faults import FaultPlan, injected
        b, inp, ref = heat_case({"T": 8, "N": 40}, seed=4)
        k = self.compile_heat(b, max_retries=1)
        plan = FaultPlan().refuse_pool(op="taskgraph", times=99)
        with injected(plan):
            out = k(u=inp["u"].copy(), T=8, N=40)
        assert np.array_equal(out["u"], ref["u"])
        st = k.runtime.taskgraph_stats
        assert st.fallbacks == 1 and st.last_reason == "worker-failure"

    def test_deadline_expiry_between_dispatches(self):
        from repro.core.errors import ExecutionError
        from repro.driver.resilience import Deadline, deadline_scope
        b, inp, __ = heat_case({"T": 12, "N": 80})
        k = self.compile_heat(b)
        expired = Deadline(1e-9)
        with deadline_scope(expired):
            with pytest.raises((DeadlineExceededError,
                                ExecutionError)) as err:
                k(u=inp["u"].copy(), T=12, N=80)
        assert "taskgraph-dispatch" in str(err.value) \
            or isinstance(err.value, DeadlineExceededError)

    def test_forkjoin_comparator_same_tiles_with_barriers(self):
        b, inp, ref = heat_case({"T": 9, "N": 50}, seed=5)
        k = self.compile_heat(b)
        with run_forkjoin(k) as rt:
            out = k(u=inp["u"].copy(), T=9, N=50)
            assert rt.scheduler_mode == "forkjoin"
        assert np.array_equal(out["u"], ref["u"])
        assert k.runtime.scheduler_mode == "ready-queue"

    def test_metrics_and_parallelism_gauge(self):
        from repro.obs.metrics import metrics
        b, inp, __ = heat_case({"T": 12, "N": 80})
        k = self.compile_heat(b)
        graphs0 = metrics.counter("taskgraph.graphs").value
        tasks0 = metrics.counter("taskgraph.tasks").value
        k(u=inp["u"].copy(), T=12, N=80)
        assert metrics.counter("taskgraph.graphs").value == graphs0 + 1
        assert metrics.counter("taskgraph.tasks").value > tasks0
        st = k.runtime.taskgraph_stats
        assert st.last_wall_seconds > 0
        assert st.last_busy_seconds > 0
