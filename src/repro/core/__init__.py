"""The Tiramisu embedded DSL: functions, computations, buffers, vars."""

from .buffer import ArgKind, Buffer, MemSpace
from .communication import (ASYNC, SYNC, allocate_at, barrier_at, cache_at,
                            copy_at, device_to_host, host_to_device, receive,
                            send)
from .computation import (Computation, ConstantScalar, Input, Operation)
from .deps import (Dependence, carried_at_level, check_schedule_legality,
                   compute_dependences, dependence_distance)
from .dump import dump_ir
from .separate import separate
from .errors import (CodegenError, ExecutionError, IllegalScheduleError,
                     ScheduleError, TiramisuError, UnsupportedScheduleError)
from .function import Function, current_function
from .var import Param, Var

__all__ = [
    "Dependence", "carried_at_level", "check_schedule_legality",
    "compute_dependences", "dependence_distance", "dump_ir", "separate",
    "ASYNC", "SYNC", "allocate_at", "barrier_at", "cache_at", "copy_at",
    "device_to_host", "host_to_device", "receive", "send",
    "ArgKind", "Buffer", "MemSpace", "Computation", "ConstantScalar",
    "Input", "Operation", "CodegenError", "ExecutionError",
    "IllegalScheduleError", "ScheduleError", "TiramisuError",
    "UnsupportedScheduleError", "Function", "current_function", "Param",
    "Var",
]
