"""Table II: the scheduling-command catalogue.

Asserts every command of the paper's table exists in the public API and
smoke-tests each family end-to-end.
"""

import numpy as np
import pytest

from conftest import print_table
from repro import (Buffer, Computation, Function, Input, Param, Var,
                   allocate_at, barrier_at, copy_at, receive, send)
from repro.features import TABLE_II_COMMANDS


def _resolve(path: str):
    if path.startswith("Computation."):
        return getattr(Computation, path.split(".", 1)[1], None)
    if path.startswith("Buffer."):
        return getattr(Buffer, path.split(".", 1)[1], None)
    parts = path.split(".")
    mod = __import__(".".join(parts[:-1]), fromlist=[parts[-1]])
    return getattr(mod, parts[-1], None)


class TestCatalogue:
    def test_print(self):
        print_table("Table II command -> API mapping", TABLE_II_COMMANDS)

    @pytest.mark.parametrize("command,path",
                             sorted(TABLE_II_COMMANDS.items()))
    def test_command_exists(self, command, path):
        assert _resolve(path) is not None, f"{command} -> {path} missing"


class TestCommandFamilies:
    """One end-to-end smoke test per family of Table II."""

    def test_loop_nest_transformations(self):
        with Function("f") as f:
            c = Computation("c", [Var("i", 0, 16), Var("j", 0, 16)], None)
            c.set_expression(c(Var("i", 0, 16), Var("j", 0, 16)) + 1.0)
        c.tile("i", "j", 4, 4)
        c.interchange("i1", "j1")
        c.shift("i0", 1)
        c.split("j1", 2)
        out = f.compile("cpu")()["c"]
        assert (out == 1).all()

    def test_hardware_mapping(self):
        with Function("f") as f:
            c = Computation("c", [Var("i", 0, 16), Var("j", 0, 16)], 2.0)
        c.parallelize("i")
        c.vectorize("j", 8)
        assert (f.compile("cpu")()["c"] == 2).all()

    def test_set_schedule_isl_syntax(self):
        """The paper's low-level escape hatch: a raw ISL map."""
        with Function("f") as f:
            c = Computation("c", [Var("i", 0, 6), Var("j", 0, 6)], 3.0)
        c.set_schedule("{ c[i,j] -> c[j,i] }")
        assert (f.compile("cpu")()["c"] == 3).all()

    def test_data_manipulation(self):
        with Function("f") as f:
            i, j = Var("i", 0, 4), Var("j", 0, 5)
            b = Buffer("soa", [5, 4])
            c = Computation("c", [i, j], None)
            c.set_expression(1.0 * i + 10.0 * j)
            c.store_in(b, [j, i])
        out = f.compile("cpu")()["soa"]
        assert out[3, 2] == 2.0 + 30.0

    def test_allocate_at_and_barrier_at(self):
        with Function("f") as f:
            i = Var("i", 0, 4)
            scratch = Buffer("scratch", [4])
            c = Computation("c", [i], 5.0)
        allocate_at(scratch, c)
        barrier_at(c)
        assert (f.compile("cpu")()["c"] == 5).all()

    def test_buffer_tags_and_sizes(self):
        b = Buffer("b", [4])
        b.set_size([8])
        b.tag_gpu_constant()
        assert b.concrete_shape({}) == (8,)

    def test_host_device_copies(self):
        with Function("f") as f:
            inp = Input("inp", [Var("x", 0, 4)])
            i = Var("i", 0, 4)
            c = Computation("c", [i], None)
            c.set_expression(inp(i) * 2.0)
        cp1 = inp.host_to_device()
        cp2 = c.device_to_host()
        cp1.before(c, None)
        cp2.after(c, None)
        k = f.compile("gpu")
        out = k(inp_host=np.arange(4, dtype=np.float32))
        assert (out["c_host"] == np.arange(4) * 2).all()

    def test_send_receive_construction(self):
        Nodes = Param("Nodes")
        with Function("f", params=[Nodes]) as f:
            b = Buffer("b", [8])
            s_it = Var("s", 1, Nodes)
            op = send([s_it], b, 0, 4, s_it - 1)
            c = Computation("c", [Var("i", 0, 8)], 0.0)
            c.store_in(b, [Var("i", 0, 8)])
        assert op.op_kind == "send"
        assert op.payload["buffer"] is b
