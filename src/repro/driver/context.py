"""The compile context: what flows between pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CompileContext:
    """Mutable state threaded through one run of the compile pipeline.

    Each stage reads its inputs from here and writes its product back:
    ``beta`` (beta-resolution), ``items`` (time-space domains), ``ast``
    (AST generation), ``source`` (backend emit) and ``kernel`` (bind).
    ``extras`` holds backend-specific products (e.g. the GPU backend's
    launch info).  ``deadline`` is the request's end-to-end budget
    (:class:`repro.driver.resilience.Deadline`, or None) — the ambient
    deadline captured at ``_begin`` so stages holding only the context
    can still charge it.
    """

    fn: object                               # repro.core.Function
    target: str
    options: Dict[str, object]
    backend: object = None                   # repro.driver.registry.Backend
    report: object = None                    # repro.driver.trace.CompileReport
    deadline: object = None                  # repro.driver.resilience.Deadline
    fingerprint: str = ""
    beta: Optional[Dict[str, List[int]]] = None
    items: Optional[list] = None             # codegen time-space items
    ast: object = None                       # repro.codegen.ast.Block
    source: Optional[str] = None
    kernel: object = None
    extras: Dict[str, object] = field(default_factory=dict)

    def opt(self, name: str, default=None):
        return self.options.get(name, default)
