"""Tests for the mini-Halide comparator: interval semantics, the three
documented restrictions, and pipeline evaluation."""

import numpy as np
import pytest

from repro.halide_mini import (BoundsAssertion, Func, HalideError, HVar,
                               ImageParam, Pipeline, interval_eval)
from repro.ir import clamp, select
from repro.ir.expr import Const, IterVar


class TestIntervalArithmetic:
    def env(self):
        return {"x": (0.0, 9.0), "y": (-3.0, 3.0)}

    def test_var_and_const(self):
        assert interval_eval(IterVar("x"), self.env()) == (0, 9)
        assert interval_eval(Const(5), self.env()) == (5, 5)

    def test_add_sub(self):
        e = IterVar("x") + IterVar("y")
        assert interval_eval(e, self.env()) == (-3, 12)
        e = IterVar("x") - IterVar("y")
        assert interval_eval(e, self.env()) == (-3, 12)

    def test_mul_signs(self):
        e = IterVar("y") * 2
        assert interval_eval(e, self.env()) == (-6, 6)
        e = IterVar("y") * IterVar("y")
        assert interval_eval(e, self.env()) == (-9, 9)  # interval, not exact

    def test_clamp_intersects(self):
        e = clamp(IterVar("x") + 5, 0, 9)
        assert interval_eval(e, self.env()) == (5, 9)

    def test_select_hull(self):
        e = select(IterVar("x") > 4, IterVar("x"), 0)
        lo, hi = interval_eval(e, self.env())
        assert lo == 0 and hi == 9

    def test_negation(self):
        assert interval_eval(-IterVar("x"), self.env()) == (-9, 0)


class TestBoundsInference:
    def test_stencil_halo(self):
        x, y = HVar("x"), HVar("y")
        img = ImageParam("img", 2)
        b = Func("b").define([x, y], img(x + 1, y) + img(x + 2, y))
        req = Pipeline([b]).infer_bounds({"b": (10, 10)})
        assert req["img"][0] == (1.0, 11.0)
        assert req["img"][1] == (0.0, 9.0)

    def test_union_over_consumers(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        a = Func("a").define([x], img(x - 1))
        b = Func("b").define([x], img(x + 1))
        top = Func("t").define([x], a(x) + b(x))
        req = Pipeline([top]).infer_bounds({"t": (8,)})
        assert req["img"][0] == (-1.0, 8.0)

    def test_triangular_over_approximated(self):
        """The core interval weakness: x - r spans the full rectangle."""
        x, r = HVar("x"), HVar("r")
        inp = ImageParam("inp", 1)
        h = Func("h").define([x, r],
                             select(x.expr() >= r.expr(), inp(x - r), 0.0))
        req = Pipeline([h]).infer_bounds({"h": (10, 10)})
        lo, hi = req["inp"][0]
        assert lo == -9.0   # over-approximation: true minimum is 0

    def test_clamped_access_stays_in_range(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        g = Func("g").define([x], img(clamp(x - 5, 0, 7)))
        req = Pipeline([g]).infer_bounds({"g": (20,)})
        assert req["img"][0] == (0.0, 7.0)


class TestPipelineEvaluation:
    def test_two_stage_blur(self):
        x, y = HVar("x"), HVar("y")
        img = ImageParam("img", 2)
        bx = Func("bx").define([x, y], (img(x, y) + img(x, y + 1)) / 2)
        by = Func("by").define([x, y], (bx(x, y) + bx(x + 1, y)) / 2)
        data = np.arange(36, dtype=np.float32).reshape(6, 6)
        out = Pipeline([by]).realize({"by": (4, 4)}, {"img": data})["by"]
        bx_ref = (data[:5, :5] + data[:5, 1:6]) / 2
        by_ref = (bx_ref[:4, :4] + bx_ref[1:5, :4]) / 2
        assert np.allclose(out, by_ref)

    def test_negative_origin_intermediate(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        a = Func("a").define([x], img(x + 2) * 1.0)
        b = Func("b").define([x], a(x - 1) + a(x))
        data = np.arange(12, dtype=np.float32)
        out = Pipeline([b]).realize({"b": (6,)}, {"img": data})["b"]
        ref = data[1:7] + data[2:8]
        assert np.allclose(out, ref)

    def test_select_and_clamp_evaluation(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        g = Func("g").define(
            [x], select(img(clamp(x - 1, 0, 7)) > 3.0, 1.0, 0.0))
        data = np.arange(8, dtype=np.float32)
        out = Pipeline([g]).realize({"g": (8,)}, {"img": data})["g"]
        ref = (data[np.clip(np.arange(8) - 1, 0, 7)] > 3).astype(float)
        assert np.allclose(out, ref)

    def test_multiple_outputs(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        a = Func("a").define([x], img(x) + 1)
        b = Func("b").define([x], img(x) * 2)
        data = np.arange(5, dtype=np.float32)
        out = Pipeline([a, b]).realize({"a": (5,), "b": (5,)},
                                       {"img": data})
        assert np.allclose(out["a"], data + 1)
        assert np.allclose(out["b"], data * 2)


class TestRestrictions:
    def test_cycle_detection_direct(self):
        x = HVar("x")
        a, b = Func("a"), Func("b")
        a.define([x], b(x))
        b.define([x], a(x))
        with pytest.raises(HalideError, match="cyclic"):
            Pipeline([a])

    def test_cycle_detection_transitive(self):
        x = HVar("x")
        a, b, c = Func("a"), Func("b"), Func("c")
        a.define([x], c(x))
        b.define([x], a(x))
        c.define([x], b(x))
        with pytest.raises(HalideError, match="cyclic"):
            Pipeline([c])

    def test_acyclic_diamond_ok(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        a = Func("a").define([x], img(x) + 1)
        b = Func("b").define([x], img(x) + 2)
        top = Func("t").define([x], a(x) + b(x))
        Pipeline([top])  # no exception

    def test_no_redefinition(self):
        x = HVar("x")
        a = Func("a").define([x], 1.0 * x)
        with pytest.raises(HalideError, match="redefinition"):
            a.define([x], 2.0 * x)

    def test_compute_with_conservative(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        p = Func("p").define([x], img(x) * 2)
        q = Func("q").define([x], p(x - 3))
        with pytest.raises(HalideError, match="dependence analysis"):
            q.compute_with(p)

    def test_compute_with_allowed_when_independent(self):
        x = HVar("x")
        img = ImageParam("img", 1)
        p = Func("p").define([x], img(x) * 2)
        q = Func("q").define([x], img(x) + 1)
        q.compute_with(p)   # independent: allowed

    def test_bounds_assertion_mode(self):
        x, r = HVar("x"), HVar("r")
        inp = ImageParam("inp", 1)
        h = Func("h").define([x, r],
                             select(x.expr() >= r.expr(), inp(x - r), 0.0))
        with pytest.raises(BoundsAssertion):
            Pipeline([h]).realize({"h": (10, 10)},
                                  {"inp": np.zeros(5, np.float32)})


class TestScheduleDirectives:
    def test_directives_recorded(self):
        x, y = HVar("x"), HVar("y")
        xo, yo, xi, yi = (HVar(n) for n in ("xo", "yo", "xi", "yi"))
        img = ImageParam("img", 2)
        f = Func("f").define([x, y], img(x, y) * 2)
        f.tile(x, y, xo, yo, xi, yi, 8, 8).parallel(xo).vectorize(xi, 8)
        kinds = [d.kind for d in f.directives]
        assert kinds == ["tile", "parallel", "vectorize"]

    def test_schedule_does_not_change_semantics(self):
        x, y = HVar("x"), HVar("y")
        img = ImageParam("img", 2)
        f = Func("f").define([x, y], img(x, y) * 2)
        f.parallel(x).vectorize(y, 8)
        data = np.random.default_rng(0).random((6, 6)).astype(np.float32)
        out = Pipeline([f]).realize({"f": (6, 6)}, {"img": data})["f"]
        assert np.allclose(out, data * 2)
